(* Property-based tests (qcheck) over randomized topologies: BGP
   safety/consistency invariants that must hold for every generated
   Internet and announcement configuration. *)

module Sm = Netsim_prng.Splitmix
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Announce = Netsim_bgp.Announce
module Route = Netsim_bgp.Route
module Propagate = Netsim_bgp.Propagate
module Catchment = Netsim_bgp.Catchment
module Walk = Netsim_bgp.Walk
module Timeline = Netsim_dynamics.Timeline

(* Randomized small Internets: vary the seed and the class counts. *)
let random_topo seed =
  let params =
    {
      Generator.small_params with
      Generator.seed;
      n_tier1 = 2 + (seed mod 3);
      n_transit = 4 + (seed mod 5);
      n_eyeball = 8 + (seed mod 10);
      n_stub = 6 + (seed mod 8);
    }
  in
  Generator.generate params

let pick_origin topo seed =
  let eyeballs = Topology.by_klass topo Asn.Eyeball in
  List.nth eyeballs (seed mod List.length eyeballs)

let rel_between topo a b =
  match Topology.links_between topo a b with
  | [] -> None
  | l :: _ -> Some (Relation.rel_of l a)

let valley_free topo path =
  let rec go phase = function
    | a :: (b :: _ as rest) -> (
        match rel_between topo a b with
        | None -> false
        | Some r -> (
            match (phase, r) with
            | `Up, Relation.To_provider -> go `Up rest
            | `Up, (Relation.Priv_peer | Relation.Pub_peer) -> go `Down rest
            | `Up, Relation.To_customer -> go `Down rest
            | `Down, Relation.To_customer -> go `Down rest
            | `Down, (Relation.To_provider | Relation.Priv_peer | Relation.Pub_peer)
              ->
                false))
    | [ _ ] | [] -> true
  in
  go `Up path

let seed_gen = QCheck.int_range 0 500

let prop_full_reachability =
  QCheck.Test.make ~name:"default announcement reaches every AS" ~count:40
    seed_gen (fun seed ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let s = Propagate.run topo (Announce.default ~origin) in
      let ok = ref true in
      for x = 0 to Topology.as_count topo - 1 do
        if not (Propagate.reachable s x) then ok := false
      done;
      !ok)

let prop_valley_free =
  QCheck.Test.make ~name:"all selected paths are valley-free" ~count:25
    seed_gen (fun seed ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let s = Propagate.run topo (Announce.default ~origin) in
      let ok = ref true in
      for x = 0 to Topology.as_count topo - 1 do
        if x <> origin then begin
          match Propagate.as_path s x with
          | [] -> ok := false
          | path -> if not (valley_free topo (x :: path)) then ok := false
        end
      done;
      !ok)

let prop_loop_free =
  QCheck.Test.make ~name:"no AS repeats on any selected path" ~count:40
    seed_gen (fun seed ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let s = Propagate.run topo (Announce.default ~origin) in
      let ok = ref true in
      for x = 0 to Topology.as_count topo - 1 do
        if x <> origin then begin
          let path = x :: Propagate.as_path s x in
          if List.length path <> List.length (List.sort_uniq compare path) then
            ok := false
        end
      done;
      !ok)

let prop_path_len_vs_as_path =
  QCheck.Test.make
    ~name:"without prepending, path_len equals AS-path length" ~count:40
    seed_gen (fun seed ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let s = Propagate.run topo (Announce.default ~origin) in
      let ok = ref true in
      for x = 0 to Topology.as_count topo - 1 do
        match Propagate.best s x with
        | Some r ->
            if r.Route.path_len <> List.length r.Route.as_path then ok := false
        | None -> ()
      done;
      !ok)

let prop_received_never_loops =
  QCheck.Test.make ~name:"Adj-RIB-In never offers a looping route" ~count:25
    seed_gen (fun seed ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let s = Propagate.run topo (Announce.default ~origin) in
      let ok = ref true in
      for x = 0 to Topology.as_count topo - 1 do
        List.iter
          (fun (r : Route.t) -> if List.mem x r.Route.as_path then ok := false)
          (Propagate.received s x)
      done;
      !ok)

let prop_withholding_monotone =
  QCheck.Test.make
    ~name:"withholding announcements never increases reachability" ~count:25
    (QCheck.pair seed_gen (QCheck.int_range 0 1000))
    (fun (seed, wseed) ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let full = Propagate.run topo (Announce.default ~origin) in
      (* Withhold a random subset of the origin's sessions. *)
      let wrng = Sm.create wseed in
      let withheld =
        Topology.neighbors topo origin
        |> List.filter_map (fun (nb : Topology.neighbor) ->
               if Netsim_prng.Dist.bernoulli wrng ~p:0.5 then
                 Some nb.Topology.link.Relation.id
               else None)
      in
      let partial =
        Propagate.run topo
          (Announce.withhold_links (Announce.default ~origin) withheld)
      in
      let count s =
        let c = ref 0 in
        for x = 0 to Topology.as_count topo - 1 do
          if Propagate.reachable s x then incr c
        done;
        !c
      in
      count partial <= count full)

let prop_prepending_preserves_reachability =
  QCheck.Test.make ~name:"prepending never breaks reachability" ~count:25
    (QCheck.pair seed_gen (QCheck.int_range 1 6))
    (fun (seed, n) ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let metros =
        (Topology.asn topo origin).Asn.footprint |> Array.to_list
      in
      let config =
        Announce.prepend_at_metros (Announce.default ~origin) metros n
      in
      let s = Propagate.run topo config in
      let ok = ref true in
      for x = 0 to Topology.as_count topo - 1 do
        if not (Propagate.reachable s x) then ok := false
      done;
      !ok)

let prop_walk_matches_selected_path =
  QCheck.Test.make ~name:"walks follow the selected AS path" ~count:25
    seed_gen (fun seed ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let s = Propagate.run topo (Announce.default ~origin) in
      let ok = ref true in
      for x = 0 to Topology.as_count topo - 1 do
        if x <> origin then begin
          match Walk.of_source s ~src:x with
          | None -> ok := false
          | Some w ->
              (* The walk's AS sequence is x followed by the selected
                 path minus the origin. *)
              let expected =
                x :: List.filter (fun a -> a <> origin) (Propagate.as_path s x)
              in
              if Walk.as_path w <> expected then ok := false
        end
      done;
      !ok)

let prop_link_failure_monotone =
  QCheck.Test.make ~name:"failing links never increases reachability"
    ~count:20
    (QCheck.pair seed_gen (QCheck.int_range 0 1000))
    (fun (seed, fseed) ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let frng = Sm.create fseed in
      let to_fail =
        Array.to_list (Topology.links topo)
        |> List.filter_map (fun (l : Relation.link) ->
               if Netsim_prng.Dist.bernoulli frng ~p:0.1 then
                 Some l.Relation.id
               else None)
      in
      let failed = Topology.remove_links topo to_fail in
      let count t =
        let s = Propagate.run t (Announce.default ~origin) in
        let c = ref 0 in
        for x = 0 to Topology.as_count t - 1 do
          if Propagate.reachable s x then incr c
        done;
        !c
      in
      count failed <= count topo)

let prop_congestion_delay_nonnegative =
  QCheck.Test.make ~name:"congestion delays are non-negative" ~count:30
    (QCheck.pair seed_gen (QCheck.int_range 0 2000))
    (fun (seed, t) ->
      let topo = random_topo seed in
      let cong =
        Netsim_latency.Congestion.create Netsim_latency.Params.default topo
          ~seed
      in
      let time_min = float_of_int t in
      let ok = ref true in
      for link_id = 0 to min 30 (Topology.link_count topo - 1) do
        if
          Netsim_latency.Congestion.entity_delay_ms cong
            (Netsim_latency.Congestion.Link link_id) ~time_min
          < 0.
        then ok := false
      done;
      !ok)

let prop_timeline_pop_sorted =
  QCheck.Test.make
    ~name:"Timeline pops in (time, seq) order for arbitrary pushes" ~count:100
    QCheck.(list (int_range 0 50))
    (fun times ->
      let tl = Timeline.create () in
      List.iteri
        (fun i t -> Timeline.schedule tl ~at:(float_of_int t) i)
        times;
      let popped = Timeline.drain tl in
      (* Expected: stable sort by time of the pushes in push order —
         i.e. ties break by schedule sequence (FIFO). *)
      let expected =
        List.mapi (fun i t -> (float_of_int t, i)) times
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
      in
      popped = expected)

let prop_reconverge_equals_full =
  QCheck.Test.make
    ~name:"incremental reconvergence equals full run on random link deltas"
    ~count:20
    (QCheck.pair seed_gen (QCheck.int_range 0 10_000))
    (fun (seed, lseed) ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      let config = Announce.default ~origin in
      let state = Propagate.run topo config in
      let l = lseed mod Topology.link_count topo in
      let failed = Topology.remove_links topo [ l ] in
      let full = Propagate.run failed config in
      let incr_down, _ =
        Propagate.reconverge state ~topo:failed (Propagate.Link_removed l)
      in
      let restored, _ =
        Propagate.reconverge incr_down ~topo (Propagate.Link_added l)
      in
      Test_util.digest failed full = Test_util.digest failed incr_down
      && Test_util.digest topo state = Test_util.digest topo restored)

let prop_optimized_equals_reference =
  QCheck.Test.make
    ~name:
      "optimized propagation equals Set-based reference (entries, walks, \
       coverage)"
    ~count:25
    (QCheck.pair seed_gen (QCheck.int_range 0 1000))
    (fun (seed, cseed) ->
      let topo = random_topo seed in
      let origin = pick_origin topo seed in
      (* Vary the announcement shape across runs: plain anycast,
         random withholding, prepending. *)
      let config =
        let base = Announce.default ~origin in
        match cseed mod 3 with
        | 0 -> base
        | 1 ->
            let wrng = Sm.create cseed in
            Topology.neighbors topo origin
            |> List.filter_map (fun (nb : Topology.neighbor) ->
                   if Netsim_prng.Dist.bernoulli wrng ~p:0.3 then
                     Some nb.Topology.link.Relation.id
                   else None)
            |> Announce.withhold_links base
        | _ ->
            let metros =
              (Topology.asn topo origin).Asn.footprint |> Array.to_list
            in
            Announce.prepend_at_metros base metros (1 + (cseed mod 4))
      in
      let opt = Propagate.run topo config in
      let reference = Propagate.run_reference topo config in
      let co = Catchment.compute opt and cr = Catchment.compute reference in
      Propagate.equal opt reference
      && Catchment.coverage co = Catchment.coverage cr
      && Catchment.sites co = Catchment.sites cr
      && List.for_all
           (fun m -> Catchment.clients_of_site co m = Catchment.clients_of_site cr m)
           (Catchment.sites co))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_full_reachability;
      prop_valley_free;
      prop_loop_free;
      prop_path_len_vs_as_path;
      prop_received_never_loops;
      prop_withholding_monotone;
      prop_prepending_preserves_reachability;
      prop_walk_matches_selected_path;
      prop_link_failure_monotone;
      prop_congestion_delay_nonnegative;
      prop_timeline_pop_sorted;
      prop_reconverge_equals_full;
      prop_optimized_equals_reference;
    ]
