(* Tests for the CDN layer: deployment grafting, egress tables, the
   edge controller, anycast/unicast serving, LDNS and the redirector. *)

module Sm = Netsim_prng.Splitmix
module Generator = Netsim_topo.Generator
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Invariants = Netsim_topo.Invariants
module Route = Netsim_bgp.Route
module Walk = Netsim_bgp.Walk
module Params = Netsim_latency.Params
module Congestion = Netsim_latency.Congestion
module Rtt = Netsim_latency.Rtt
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Population = Netsim_traffic.Population
module Deployment = Netsim_cdn.Deployment
module Egress = Netsim_cdn.Egress
module Edge_controller = Netsim_cdn.Edge_controller
module Anycast = Netsim_cdn.Anycast
module Ldns = Netsim_cdn.Ldns
module Redirector = Netsim_cdn.Redirector
module World = Netsim_geo.World
module City = Netsim_geo.City

let base = lazy (Generator.generate Generator.small_params)

let pops () =
  List.map
    (fun n -> (World.find_exn n).City.id)
    [ "New York"; "London"; "Tokyo"; "Sao Paulo"; "Sydney"; "Frankfurt" ]

let deployment =
  lazy
    (Deployment.deploy (Lazy.force base) ~rng:(Sm.create 11)
       (Deployment.default_spec ~name:"CP-TEST" ~pop_metros:(pops ())))

(* ---- Deployment ---- *)

let test_deploy_adds_provider_as () =
  let d = Lazy.force deployment in
  let a = Topology.asn d.Deployment.topo d.Deployment.asid in
  Alcotest.(check bool) "content class" true (a.Asn.klass = Asn.Content);
  Alcotest.(check int) "footprint = pops"
    (List.length d.Deployment.pops)
    (Array.length a.Asn.footprint)

let test_deploy_has_transit_and_peers () =
  let d = Lazy.force deployment in
  Alcotest.(check bool) "has transit sessions" true
    (d.Deployment.transit_link_count > 0);
  Alcotest.(check bool) "has PNIs" true (d.Deployment.pni_count > 0);
  Alcotest.(check bool) "providers present" true
    (Topology.providers d.Deployment.topo d.Deployment.asid <> [])

let test_deploy_transit_at_every_pop () =
  (* The unicast-reachability guarantee: each PoP metro has at least
     one transit session. *)
  let d = Lazy.force deployment in
  let transit_metros =
    Topology.neighbors d.Deployment.topo d.Deployment.asid
    |> List.filter_map (fun (nb : Topology.neighbor) ->
           if nb.Topology.rel = Relation.To_provider then
             Some nb.Topology.link.Relation.metro
           else None)
  in
  List.iter
    (fun pop ->
      Alcotest.(check bool)
        (Printf.sprintf "transit at pop %d" pop)
        true
        (List.mem pop transit_metros))
    d.Deployment.pops

let test_deploy_invariants_hold () =
  let d = Lazy.force deployment in
  Alcotest.(check (list string)) "grafted topology valid" []
    (Invariants.check d.Deployment.topo)

let test_deploy_peer_fraction_zero () =
  let spec =
    {
      (Deployment.default_spec ~name:"NOPEER" ~pop_metros:(pops ())) with
      Deployment.peer_fraction = 0.;
    }
  in
  let d = Deployment.deploy (Lazy.force base) ~rng:(Sm.create 11) spec in
  Alcotest.(check int) "no PNIs" 0 d.Deployment.pni_count;
  Alcotest.(check int) "no public peers" 0 d.Deployment.public_peer_count

let test_deploy_peer_fraction_monotone () =
  let count fraction =
    let spec =
      {
        (Deployment.default_spec ~name:"FRAC" ~pop_metros:(pops ())) with
        Deployment.peer_fraction = fraction;
      }
    in
    (Deployment.deploy (Lazy.force base) ~rng:(Sm.create 11) spec)
      .Deployment.pni_count
  in
  Alcotest.(check bool) "fewer peers at lower fraction" true
    (count 0.25 <= count 1.0)

let test_deploy_rejects_empty_pops () =
  Alcotest.check_raises "no pops" (Invalid_argument "Deployment.deploy: no PoPs")
    (fun () ->
      ignore
        (Deployment.deploy (Lazy.force base) ~rng:(Sm.create 1)
           (Deployment.default_spec ~name:"X" ~pop_metros:[])))

let test_nearest_pop () =
  let d = Lazy.force deployment in
  let boston = (World.find_exn "Boston").City.id in
  let ny = (World.find_exn "New York").City.id in
  Alcotest.(check int) "Boston served from NY" ny
    (Deployment.nearest_pop d ~city:boston);
  let osaka = (World.find_exn "Osaka").City.id in
  let tokyo = (World.find_exn "Tokyo").City.id in
  Alcotest.(check int) "Osaka served from Tokyo" tokyo
    (Deployment.nearest_pop d ~city:osaka)

(* ---- Egress ---- *)

let prefixes =
  lazy
    (Population.generate (Lazy.force deployment).Deployment.topo
       ~rng:(Sm.create 21) ~n_prefixes:40)

let entries =
  lazy (Egress.compute (Lazy.force deployment) ~prefixes:(Lazy.force prefixes) ~k:3)

let test_egress_entries_exist () =
  let e = Lazy.force entries in
  Alcotest.(check bool) "most prefixes have entries" true
    (Array.length e >= 35)

let test_egress_options_ranked_and_bounded () =
  Array.iter
    (fun (e : Egress.entry) ->
      let n = List.length e.Egress.options in
      Alcotest.(check bool) "1..3 options" true (n >= 1 && n <= 3);
      Alcotest.(check bool) "all_options superset" true
        (List.length e.Egress.all_options >= n))
    (Lazy.force entries)

let test_egress_head_is_most_preferred () =
  (* The head must never be a transit route when a peer route exists. *)
  Array.iter
    (fun (e : Egress.entry) ->
      match e.Egress.options with
      | head :: _ ->
          let has_peer = List.exists Egress.is_peer_route e.Egress.all_options in
          if has_peer then
            Alcotest.(check bool) "peer-first policy" true
              (Egress.is_peer_route head)
      | [] -> Alcotest.fail "entry without options")
    (Lazy.force entries)

let test_egress_serving_pop_is_nearest () =
  let d = Lazy.force deployment in
  Array.iter
    (fun (e : Egress.entry) ->
      Alcotest.(check int) "pop = nearest"
        (Deployment.nearest_pop d ~city:e.Egress.prefix.Prefix.city)
        e.Egress.pop)
    (Lazy.force entries)

let test_egress_flows_end_at_client () =
  let d = Lazy.force deployment in
  Array.iter
    (fun (e : Egress.entry) ->
      List.iter
        (fun (o : Egress.option_route) ->
          let hops = o.Egress.flow.Rtt.walk.Walk.hops in
          (match hops with
          | first :: _ ->
              Alcotest.(check int) "starts at provider" d.Deployment.asid
                first.Walk.asid
          | [] -> Alcotest.fail "empty walk");
          match List.rev hops with
          | last :: _ ->
              Alcotest.(check int) "ends entering the client AS"
                e.Egress.prefix.Prefix.asid
                (Relation.other last.Walk.link last.Walk.asid)
          | [] -> ())
        e.Egress.options)
    (Lazy.force entries)

let test_egress_route_kind_classification () =
  Array.iter
    (fun (e : Egress.entry) ->
      List.iter
        (fun (o : Egress.option_route) ->
          let peer = Egress.is_peer_route o in
          let transit = Egress.is_transit_route o in
          Alcotest.(check bool) "mutually exclusive" false (peer && transit))
        e.Egress.all_options)
    (Lazy.force entries)

(* ---- Edge controller ---- *)

let multi_route_entry =
  lazy
    (match
       Array.to_list (Lazy.force entries)
       |> List.filter (fun (e : Egress.entry) ->
              List.length e.Egress.options >= 2)
     with
    | e :: _ -> e
    | [] -> Alcotest.fail "no multi-route entry in test deployment")

let test_controller_measures_all_routes () =
  let e = Lazy.force multi_route_entry in
  let d = Lazy.force deployment in
  let cong = Congestion.create Params.default d.Deployment.topo ~seed:3 in
  let w = { Window.index = 0; start_min = 0.; length_min = 15. } in
  let r =
    Edge_controller.measure_window cong ~rng:(Sm.create 2) ~samples_per_route:9 w e
  in
  Alcotest.(check int) "one measurement per route"
    (List.length e.Egress.options)
    (List.length r.Edge_controller.per_route);
  Alcotest.(check bool) "alternate identified" true
    (r.Edge_controller.best_alternate <> None)

let test_controller_improvement_consistency () =
  let e = Lazy.force multi_route_entry in
  let d = Lazy.force deployment in
  let cong = Congestion.create Params.default d.Deployment.topo ~seed:3 in
  let w = { Window.index = 1; start_min = 15.; length_min = 15. } in
  let r =
    Edge_controller.measure_window cong ~rng:(Sm.create 2) ~samples_per_route:9 w e
  in
  match (Edge_controller.improvement_ms r, r.Edge_controller.best_alternate) with
  | Some d_ms, Some alt ->
      Alcotest.(check (float 1e-9)) "improvement = bgp - alt"
        (r.Edge_controller.bgp.Edge_controller.median_ms
        -. alt.Edge_controller.median_ms)
        d_ms
  | _, _ -> Alcotest.fail "expected improvement"

let test_controller_bounds_bracket_point_estimate () =
  let e = Lazy.force multi_route_entry in
  let d = Lazy.force deployment in
  let cong = Congestion.create Params.default d.Deployment.topo ~seed:3 in
  let w = { Window.index = 2; start_min = 30.; length_min = 15. } in
  let r =
    Edge_controller.measure_window cong ~rng:(Sm.create 2) ~samples_per_route:15 w e
  in
  match (Edge_controller.improvement_ms r, Edge_controller.improvement_bounds r) with
  | Some d_ms, Some (lo, hi) ->
      Alcotest.(check bool) "lo <= diff <= hi" true (lo <= d_ms && d_ms <= hi)
  | _, _ -> Alcotest.fail "expected bounds"

let test_controller_single_route_entry () =
  let e =
    match
      Array.to_list (Lazy.force entries)
      |> List.filter (fun (e : Egress.entry) ->
             List.length e.Egress.options = 1)
    with
    | e :: _ -> e
    | [] -> raise Not_found
  in
  let d = Lazy.force deployment in
  let cong = Congestion.create Params.default d.Deployment.topo ~seed:3 in
  let w = { Window.index = 0; start_min = 0.; length_min = 15. } in
  let r =
    Edge_controller.measure_window cong ~rng:(Sm.create 2) ~samples_per_route:5 w e
  in
  Alcotest.(check bool) "no alternate" true
    (r.Edge_controller.best_alternate = None);
  Alcotest.(check bool) "no improvement defined" true
    (Edge_controller.improvement_ms r = None)

let test_controller_single_route_entry_guarded () =
  (* Some deployments give every prefix >= 2 routes; skip cleanly. *)
  try test_controller_single_route_entry () with Not_found -> ()

(* ---- Anycast ---- *)

let anycast = lazy (Anycast.make (Lazy.force deployment))

let test_anycast_sites () =
  let a = Lazy.force anycast in
  Alcotest.(check (list int)) "sites = pops"
    (List.sort compare (Lazy.force deployment).Deployment.pops)
    (List.sort compare (Anycast.sites a))

let test_anycast_flows_exist () =
  let a = Lazy.force anycast in
  let covered =
    Array.to_list (Lazy.force prefixes)
    |> List.filter (fun p -> Anycast.anycast_flow a p <> None)
  in
  Alcotest.(check bool) "nearly all clients covered" true
    (List.length covered >= Array.length (Lazy.force prefixes) - 2)

let test_anycast_site_is_entry_metro () =
  let a = Lazy.force anycast in
  Array.iter
    (fun p ->
      match (Anycast.anycast_flow a p, Anycast.anycast_site a p) with
      | Some flow, Some site ->
          Alcotest.(check int) "site = walk entry"
            (Walk.entry_metro flow.Rtt.walk)
            site
      | None, None -> ()
      | _, _ -> Alcotest.fail "flow/site mismatch")
    (Lazy.force prefixes)

let test_unicast_enters_requested_site () =
  let a = Lazy.force anycast in
  let site = List.hd (Anycast.sites a) in
  Array.iter
    (fun p ->
      match Anycast.unicast_flow a p ~site with
      | None -> ()
      | Some flow ->
          Alcotest.(check int) "enters the unicast site" site
            (Walk.entry_metro flow.Rtt.walk))
    (Lazy.force prefixes)

let test_unicast_unknown_site_rejected () =
  let a = Lazy.force anycast in
  Alcotest.check_raises "unknown site"
    (Invalid_argument "Anycast.unicast_flow: unknown site") (fun () ->
      ignore
        (Anycast.unicast_flow a (Lazy.force prefixes).(0) ~site:(-1)))

let test_grooming_changes_catchment_config () =
  let a = Lazy.force anycast in
  let base_config = Anycast.anycast_config a in
  let withheld =
    (* Withhold all announcements at the first site. *)
    let site = List.hd (Anycast.sites a) in
    Netsim_bgp.Announce.with_overrides base_config (fun link ->
        if link.Relation.metro = site then
          Some { Netsim_bgp.Announce.export = false; prepend = 0; no_export = false }
        else None)
  in
  let groomed = Anycast.with_grooming a withheld in
  let site = List.hd (Anycast.sites a) in
  Array.iter
    (fun p ->
      match Anycast.anycast_site groomed p with
      | Some s ->
          Alcotest.(check bool) "withheld site unused" true (s <> site)
      | None -> ())
    (Lazy.force prefixes)

(* ---- Ldns ---- *)

let assignment =
  lazy
    (Ldns.assign (Lazy.force deployment).Deployment.topo
       ~prefixes:(Lazy.force prefixes) ~rng:(Sm.create 31) Ldns.default_params)

let test_ldns_every_prefix_assigned () =
  let a = Lazy.force assignment in
  Array.iter
    (fun (p : Prefix.t) ->
      let r = Ldns.resolver_of a p in
      Alcotest.(check bool) "valid resolver id" true
        (r.Ldns.id >= 0 && r.Ldns.id < Array.length a.Ldns.resolvers))
    (Lazy.force prefixes)

let test_ldns_public_and_private_mix () =
  let a = Lazy.force assignment in
  let publics =
    Array.to_list (Lazy.force prefixes)
    |> List.filter (fun p -> (Ldns.resolver_of a p).Ldns.public)
  in
  let n = Array.length (Lazy.force prefixes) in
  Alcotest.(check bool) "some public users" true (List.length publics > 0);
  Alcotest.(check bool) "some in-AS users" true (List.length publics < n)

let test_ldns_in_as_resolver_at_home () =
  let t = (Lazy.force deployment).Deployment.topo in
  let a = Lazy.force assignment in
  Array.iter
    (fun (p : Prefix.t) ->
      let r = Ldns.resolver_of a p in
      if not r.Ldns.public then
        Alcotest.(check int) "resolver at AS home"
          (Asn.home (Topology.asn t p.Prefix.asid))
          r.Ldns.city)
    (Lazy.force prefixes)

let test_ldns_measurement_city () =
  let a = Lazy.force assignment in
  Array.iter
    (fun (p : Prefix.t) ->
      let city = Ldns.measurement_city a p in
      if a.Ldns.ecs.(p.Prefix.id) then
        Alcotest.(check int) "ecs uses client city" p.Prefix.city city
      else
        Alcotest.(check int) "non-ecs uses resolver city"
          (Ldns.resolver_of a p).Ldns.city city)
    (Lazy.force prefixes)

let test_ldns_public_pools_are_regional () =
  (* Public resolvers are anycast: a pool never mixes clients from
     different continents (finer pools = stabler predictions). *)
  let a = Lazy.force assignment in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (p : Prefix.t) ->
      let r = Ldns.resolver_of a p in
      if r.Ldns.public then begin
        let continent =
          Netsim_geo.World.cities.(p.Prefix.city).Netsim_geo.City.continent
        in
        match Hashtbl.find_opt tbl r.Ldns.id with
        | None -> Hashtbl.replace tbl r.Ldns.id continent
        | Some c ->
            Alcotest.(check bool) "pool is single-continent" true
              (c = continent)
      end)
    (Lazy.force prefixes)

let test_redirector_client_sample_trains () =
  let a = Lazy.force anycast in
  let assignment = Lazy.force assignment in
  let d = Lazy.force deployment in
  let cong = Congestion.create Params.default d.Deployment.topo ~seed:7 in
  let windows = Window.windows ~days:0.5 ~length_min:120. in
  let table =
    Redirector.train ~client_sample:1 a ~assignment
      ~prefixes:(Lazy.force prefixes) ~cong ~rng:(Sm.create 41) ~windows
      ~samples_per_window:2
  in
  let f = Redirector.redirected_fraction table in
  Alcotest.(check bool) "sparse training still bounded" true
    (f >= 0. && f <= 1.)

let test_redirector_margin_monotone () =
  (* A larger margin can only reduce (or keep) the redirected set. *)
  let a = Lazy.force anycast in
  let assignment = Lazy.force assignment in
  let d = Lazy.force deployment in
  let cong = Congestion.create Params.default d.Deployment.topo ~seed:7 in
  let windows = Window.windows ~days:0.5 ~length_min:120. in
  let frac margin =
    Redirector.redirected_fraction
      (Redirector.train ~margin a ~assignment ~prefixes:(Lazy.force prefixes)
         ~cong ~rng:(Sm.create 41) ~windows ~samples_per_window:2)
  in
  Alcotest.(check bool) "margin reduces redirection" true
    (frac 50. <= frac 0. +. 1e-9)

let test_ldns_clients_of_resolver_partition () =
  let a = Lazy.force assignment in
  let total =
    Array.fold_left
      (fun acc (r : Ldns.resolver) ->
        acc
        + List.length
            (Ldns.clients_of_resolver a (Lazy.force prefixes) r.Ldns.id))
      0 a.Ldns.resolvers
  in
  Alcotest.(check int) "partition" (Array.length (Lazy.force prefixes)) total

(* ---- Redirector ---- *)

let test_redirector_train_and_choices () =
  let a = Lazy.force anycast in
  let assignment = Lazy.force assignment in
  let d = Lazy.force deployment in
  let cong = Congestion.create Params.default d.Deployment.topo ~seed:7 in
  let windows = Window.windows ~days:0.5 ~length_min:120. in
  let table =
    Redirector.train a ~assignment ~prefixes:(Lazy.force prefixes) ~cong
      ~rng:(Sm.create 41) ~windows ~samples_per_window:2
  in
  let f = Redirector.redirected_fraction table in
  Alcotest.(check bool) "fraction in [0,1]" true (f >= 0. && f <= 1.);
  Alcotest.(check bool) "choices recorded" true (Redirector.choices table <> []);
  (* Every client's choice resolves to a servable flow. *)
  Array.iter
    (fun p ->
      let choice = Redirector.choice_for table assignment p in
      match Redirector.flow_for_choice a p choice with
      | Some _ -> ()
      | None ->
          (* Acceptable only if even anycast cannot reach this client. *)
          Alcotest.(check bool) "unreachable client" true
            (Anycast.anycast_flow a p = None))
    (Lazy.force prefixes)

let test_redirector_site_choices_point_at_sites () =
  let a = Lazy.force anycast in
  let assignment = Lazy.force assignment in
  let d = Lazy.force deployment in
  let cong = Congestion.create Params.default d.Deployment.topo ~seed:7 in
  let windows = Window.windows ~days:0.5 ~length_min:120. in
  let table =
    Redirector.train a ~assignment ~prefixes:(Lazy.force prefixes) ~cong
      ~rng:(Sm.create 41) ~windows ~samples_per_window:2
  in
  List.iter
    (fun (_, choice) ->
      match choice with
      | Redirector.Use_anycast -> ()
      | Redirector.Use_site s ->
          Alcotest.(check bool) "site exists" true
            (List.mem s (Anycast.sites a)))
    (Redirector.choices table)

let suite =
  [
    Alcotest.test_case "deploy adds provider" `Quick test_deploy_adds_provider_as;
    Alcotest.test_case "deploy transit+peers" `Quick test_deploy_has_transit_and_peers;
    Alcotest.test_case "transit at every pop" `Quick test_deploy_transit_at_every_pop;
    Alcotest.test_case "deploy invariants" `Quick test_deploy_invariants_hold;
    Alcotest.test_case "peer fraction zero" `Quick test_deploy_peer_fraction_zero;
    Alcotest.test_case "peer fraction monotone" `Quick test_deploy_peer_fraction_monotone;
    Alcotest.test_case "reject empty pops" `Quick test_deploy_rejects_empty_pops;
    Alcotest.test_case "nearest pop" `Quick test_nearest_pop;
    Alcotest.test_case "egress entries exist" `Quick test_egress_entries_exist;
    Alcotest.test_case "egress options bounded" `Quick test_egress_options_ranked_and_bounded;
    Alcotest.test_case "egress peer-first" `Quick test_egress_head_is_most_preferred;
    Alcotest.test_case "egress nearest pop" `Quick test_egress_serving_pop_is_nearest;
    Alcotest.test_case "egress flows end at client" `Quick test_egress_flows_end_at_client;
    Alcotest.test_case "egress kind classification" `Quick test_egress_route_kind_classification;
    Alcotest.test_case "controller measures routes" `Quick test_controller_measures_all_routes;
    Alcotest.test_case "controller improvement" `Quick test_controller_improvement_consistency;
    Alcotest.test_case "controller bounds" `Quick test_controller_bounds_bracket_point_estimate;
    Alcotest.test_case "controller single route" `Quick test_controller_single_route_entry_guarded;
    Alcotest.test_case "anycast sites" `Quick test_anycast_sites;
    Alcotest.test_case "anycast flows exist" `Quick test_anycast_flows_exist;
    Alcotest.test_case "anycast site = entry" `Quick test_anycast_site_is_entry_metro;
    Alcotest.test_case "unicast enters site" `Quick test_unicast_enters_requested_site;
    Alcotest.test_case "unicast unknown site" `Quick test_unicast_unknown_site_rejected;
    Alcotest.test_case "grooming withholds site" `Quick test_grooming_changes_catchment_config;
    Alcotest.test_case "ldns assigned" `Quick test_ldns_every_prefix_assigned;
    Alcotest.test_case "ldns public/private mix" `Quick test_ldns_public_and_private_mix;
    Alcotest.test_case "ldns in-AS at home" `Quick test_ldns_in_as_resolver_at_home;
    Alcotest.test_case "ldns measurement city" `Quick test_ldns_measurement_city;
    Alcotest.test_case "ldns partition" `Quick test_ldns_clients_of_resolver_partition;
    Alcotest.test_case "ldns regional pools" `Quick test_ldns_public_pools_are_regional;
    Alcotest.test_case "redirector client_sample" `Quick test_redirector_client_sample_trains;
    Alcotest.test_case "redirector margin monotone" `Quick test_redirector_margin_monotone;
    Alcotest.test_case "redirector train/choices" `Quick test_redirector_train_and_choices;
    Alcotest.test_case "redirector sites valid" `Quick test_redirector_site_choices_point_at_sites;
  ]
