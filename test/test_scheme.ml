(* Tests for the unified scheme-comparison harness. *)

module Sm = Netsim_prng.Splitmix
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Sch = Beatbgp.Scheme
module S = Beatbgp.Scenario

let sizes = S.test_sizes
let fb = lazy (S.facebook ~sizes ())
let ms = lazy (S.microsoft ~sizes ())
let windows = Window.windows ~days:0.5 ~length_min:90.

let egress_report =
  lazy
    (let fb = Lazy.force fb in
     Sch.compare_schemes
       [ Sch.egress_bgp fb; Sch.egress_static_oracle fb; Sch.egress_oracle fb ]
       ~prefixes:fb.S.fb_prefixes ~rng:(Sm.create 3) ~windows)

let cdn_report =
  lazy
    (let ms = Lazy.force ms in
     Sch.compare_schemes
       [ Sch.anycast ms; Sch.unicast_oracle ms; Sch.dns_redirection ms ]
       ~prefixes:ms.S.ms_prefixes ~rng:(Sm.create 3) ~windows)

let test_report_shape () =
  let r = Lazy.force egress_report in
  Alcotest.(check (list string)) "names in order"
    [ "bgp"; "oracle-static"; "oracle-dynamic" ]
    r.Sch.scheme_names;
  List.iter
    (fun n ->
      Alcotest.(check bool) "median present & positive" true
        (List.assoc n r.Sch.medians > 0.);
      Alcotest.(check bool) "p95 >= median" true
        (List.assoc n r.Sch.p95s >= List.assoc n r.Sch.medians))
    r.Sch.scheme_names

let test_oracle_never_worse () =
  (* The dynamic oracle picks the per-window best of a superset that
     includes BGP's choice: its median cannot exceed BGP's, and it can
     never lose to BGP on any point — win_rate(bgp, oracle) = 0. *)
  let r = Lazy.force egress_report in
  Alcotest.(check bool) "oracle median <= bgp median" true
    (List.assoc "oracle-dynamic" r.Sch.medians
    <= List.assoc "bgp" r.Sch.medians +. 1e-9);
  Alcotest.(check (float 1e-9)) "bgp never beats the oracle by 2ms" 0.
    (Sch.win_rate r "bgp" "oracle-dynamic")

let test_oracle_win_rate_small () =
  (* The paper's core finding restated: the omniscient controller
     meaningfully beats BGP on only a small share of points. *)
  let r = Lazy.force egress_report in
  Alcotest.(check bool) "oracle wins rarely" true
    (Sch.win_rate r "oracle-dynamic" "bgp" < 0.35)

let test_diagonal_zero () =
  let r = Lazy.force egress_report in
  List.iter
    (fun n ->
      Alcotest.(check (float 1e-9)) "self win rate zero" 0.
        (Sch.win_rate r n n))
    r.Sch.scheme_names

let test_win_rates_bounded () =
  let r = Lazy.force cdn_report in
  List.iter
    (fun ((_, _), v) ->
      if not (Float.is_nan v) then
        Alcotest.(check bool) "in [0,1]" true (v >= 0. && v <= 1.))
    r.Sch.win_matrix

let test_unicast_oracle_dominates_anycast () =
  (* The oracle includes the anycast landing spot's site among its
     candidates in almost every case; anycast should essentially never
     beat it by 2 ms. *)
  let r = Lazy.force cdn_report in
  Alcotest.(check bool) "anycast rarely beats the site oracle" true
    (Sch.win_rate r "anycast" "unicast-oracle" < 0.1)

let test_unservable_bounded () =
  let r = Lazy.force cdn_report in
  List.iter
    (fun (_, u) ->
      Alcotest.(check bool) "unservable share in [0,1]" true (u >= 0. && u <= 1.))
    r.Sch.unservable

let test_serve_interface () =
  let fb = Lazy.force fb in
  let scheme = Sch.egress_bgp fb in
  Alcotest.(check string) "name" "bgp" (Sch.name scheme);
  let p = fb.S.fb_prefixes.(0) in
  match Sch.serve scheme p ~time_min:300. ~rng:(Sm.create 1) with
  | Some v -> Alcotest.(check bool) "positive latency" true (v > 0.)
  | None -> () (* acceptable: prefix without an egress entry *)

let test_render_contains_names_and_matrix () =
  let out = Sch.render (Lazy.force egress_report) in
  Alcotest.(check bool) "mentions schemes" true
    (Test_util.contains out "oracle-dynamic");
  Alcotest.(check bool) "has win matrix" true
    (Test_util.contains out "win matrix")

let test_empty_schemes_rejected () =
  let fb = Lazy.force fb in
  Alcotest.check_raises "no schemes"
    (Invalid_argument "Scheme.compare_schemes: no schemes") (fun () ->
      ignore
        (Sch.compare_schemes [] ~prefixes:fb.S.fb_prefixes ~rng:(Sm.create 1)
           ~windows))

let test_deterministic_given_rng () =
  let fb = Lazy.force fb in
  let run () =
    Sch.compare_schemes [ Sch.egress_bgp fb ]
      ~prefixes:fb.S.fb_prefixes ~rng:(Sm.create 11) ~windows
  in
  Alcotest.(check bool) "same medians" true
    ((run ()).Sch.medians = (run ()).Sch.medians)

let suite =
  [
    Alcotest.test_case "report shape" `Slow test_report_shape;
    Alcotest.test_case "oracle never worse" `Slow test_oracle_never_worse;
    Alcotest.test_case "oracle wins rarely" `Slow test_oracle_win_rate_small;
    Alcotest.test_case "diagonal zero" `Slow test_diagonal_zero;
    Alcotest.test_case "win rates bounded" `Slow test_win_rates_bounded;
    Alcotest.test_case "unicast oracle dominates" `Slow test_unicast_oracle_dominates_anycast;
    Alcotest.test_case "unservable bounded" `Slow test_unservable_bounded;
    Alcotest.test_case "serve interface" `Slow test_serve_interface;
    Alcotest.test_case "render" `Slow test_render_contains_names_and_matrix;
    Alcotest.test_case "empty rejected" `Slow test_empty_schemes_rejected;
    Alcotest.test_case "deterministic" `Slow test_deterministic_given_rng;
  ]
