(* Tests for vantage-point selection, ping campaigns and traceroute
   introspection. *)

module Sm = Netsim_prng.Splitmix
module Generator = Netsim_topo.Generator
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Walk = Netsim_bgp.Walk
module Params = Netsim_latency.Params
module Congestion = Netsim_latency.Congestion
module Rtt = Netsim_latency.Rtt
module Propagation = Netsim_latency.Propagation
module Vantage = Netsim_measure.Vantage
module Campaign = Netsim_measure.Campaign
open Fixture

let topo_gen = lazy (Generator.generate Generator.small_params)

(* ---- Vantage ---- *)

let test_vantage_count_and_distinct () =
  let vps = Vantage.select (Lazy.force topo_gen) ~rng:(Sm.create 4) ~n:60 in
  Alcotest.(check int) "requested count" 60 (Array.length vps);
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let distinct =
    Array.fold_left
      (fun acc (v : Vantage.t) -> S.add (v.Vantage.asid, v.Vantage.city) acc)
      S.empty vps
  in
  Alcotest.(check int) "all distinct" 60 (S.cardinal distinct)

let test_vantage_hosts_access_networks () =
  let t = Lazy.force topo_gen in
  let vps = Vantage.select t ~rng:(Sm.create 4) ~n:40 in
  Array.iter
    (fun (v : Vantage.t) ->
      let klass = (Topology.asn t v.Vantage.asid).Asn.klass in
      Alcotest.(check bool) "eyeball or stub" true
        (klass = Asn.Eyeball || klass = Asn.Stub);
      Alcotest.(check bool) "city in footprint" true
        (Asn.present_at (Topology.asn t v.Vantage.asid) v.Vantage.city))
    vps

let test_vantage_deterministic () =
  let t = Lazy.force topo_gen in
  let a = Vantage.select t ~rng:(Sm.create 4) ~n:30 in
  let b = Vantage.select t ~rng:(Sm.create 4) ~n:30 in
  Alcotest.(check bool) "same selection" true (a = b)

let test_vantage_country_continent () =
  let t = Lazy.force topo_gen in
  let vps = Vantage.select t ~rng:(Sm.create 4) ~n:10 in
  Array.iter
    (fun (v : Vantage.t) ->
      let city = Netsim_geo.World.cities.(v.Vantage.city) in
      Alcotest.(check string) "country matches city"
        city.Netsim_geo.City.country (Vantage.country v))
    vps

(* ---- Campaign ---- *)

let fixture_flow () =
  let t = topo () in
  let s = Propagate.run t (Announce.default ~origin:cp) in
  match Walk.of_source s ~src:st with
  | Some w ->
      ( t,
        Rtt.make_flow ~access:(Congestion.Access 0)
          ~terminal:Propagation.At_entry w )
  | None -> Alcotest.fail "no walk"

let test_ping_samples_count () =
  let t, flow = fixture_flow () in
  let c = Congestion.create Params.default t ~seed:2 in
  let samples =
    Campaign.ping_samples c ~rng:(Sm.create 1) ~days:2. ~per_day:10
      ~pings_per_round:3 flow
  in
  Alcotest.(check int) "rounds = days * per_day" 20 (Array.length samples);
  Array.iter
    (fun v -> Alcotest.(check bool) "positive" true (v > 0.))
    samples

let test_ping_min_of_round () =
  (* With more pings per round, the round minimum cannot increase in
     expectation; check medians are ordered for the same rng seed
     structure. *)
  let t, flow = fixture_flow () in
  let c = Congestion.create Params.default t ~seed:2 in
  let med pings =
    Campaign.ping_median c ~rng:(Sm.create 7) ~days:3. ~per_day:8
      ~pings_per_round:pings flow
  in
  Alcotest.(check bool) "min-filtering reduces median" true (med 8 <= med 1 +. 1e-9)

let test_ping_median_deterministic () =
  let t, flow = fixture_flow () in
  let c = Congestion.create Params.default t ~seed:2 in
  let m1 =
    Campaign.ping_median c ~rng:(Sm.create 5) ~days:1. ~per_day:10
      ~pings_per_round:4 flow
  in
  let m2 =
    Campaign.ping_median c ~rng:(Sm.create 5) ~days:1. ~per_day:10
      ~pings_per_round:4 flow
  in
  Alcotest.(check (float 1e-12)) "deterministic" m1 m2

let test_traceroute () =
  let _, flow = fixture_flow () in
  let trace = Campaign.traceroute ~start_city:chicago flow.Rtt.walk in
  Alcotest.(check (list int)) "as path" [ st; eb ] trace.Campaign.as_path;
  Alcotest.(check int) "entry metro" chicago trace.Campaign.entry_metro;
  Alcotest.(check (float 1e-9)) "zero ingress distance" 0.
    trace.Campaign.ingress_km

let test_traceroute_remote_entry () =
  (* Announce only at London: a Chicago client's ingress distance is
     the Chicago-London distance. *)
  let t = topo () in
  let s = Propagate.run t (Announce.only_at_metros ~origin:cp [ london ]) in
  match Walk.of_source s ~src:st with
  | None -> Alcotest.fail "no walk"
  | Some w ->
      let trace = Campaign.traceroute ~start_city:chicago w in
      Alcotest.(check int) "entry london" london trace.Campaign.entry_metro;
      Alcotest.(check bool) "transatlantic ingress distance" true
        (trace.Campaign.ingress_km > 6000.)

let test_single_as_fraction_all_local () =
  (* A walk with no intra-AS carriage: fraction defaults to 1. *)
  let _, flow = fixture_flow () in
  Alcotest.(check (float 1e-9)) "no carry = 1.0" 1.
    (Campaign.single_as_fraction flow.Rtt.walk)

let test_single_as_fraction_dominant_carrier () =
  (* T1b from Tokyo: T1b carries Tokyo->NY, the only carriage leg. *)
  let t = topo () in
  let s = Propagate.run t (Announce.default ~origin:cp) in
  match Walk.from_metro s ~src:t1b ~start_metro:tokyo with
  | None -> Alcotest.fail "no walk"
  | Some w ->
      Alcotest.(check (float 1e-9)) "single carrier" 1.
        (Campaign.single_as_fraction w)

let suite =
  [
    Alcotest.test_case "vantage count/distinct" `Quick test_vantage_count_and_distinct;
    Alcotest.test_case "vantage access networks" `Quick test_vantage_hosts_access_networks;
    Alcotest.test_case "vantage deterministic" `Quick test_vantage_deterministic;
    Alcotest.test_case "vantage country" `Quick test_vantage_country_continent;
    Alcotest.test_case "ping sample count" `Quick test_ping_samples_count;
    Alcotest.test_case "ping min filtering" `Quick test_ping_min_of_round;
    Alcotest.test_case "ping deterministic" `Quick test_ping_median_deterministic;
    Alcotest.test_case "traceroute" `Quick test_traceroute;
    Alcotest.test_case "traceroute remote entry" `Quick test_traceroute_remote_entry;
    Alcotest.test_case "single-AS fraction local" `Quick test_single_as_fraction_all_local;
    Alcotest.test_case "single-AS fraction carrier" `Quick test_single_as_fraction_dominant_carrier;
  ]
