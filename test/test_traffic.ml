(* Tests for client populations and measurement windows. *)

module Sm = Netsim_prng.Splitmix
module Generator = Netsim_topo.Generator
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Prefix = Netsim_traffic.Prefix
module Population = Netsim_traffic.Population
module Window = Netsim_traffic.Window

let topo = lazy (Generator.generate Generator.small_params)

let gen ?(seed = 3) n =
  Population.generate (Lazy.force topo) ~rng:(Sm.create seed) ~n_prefixes:n

(* ---- Population ---- *)

let test_population_count () =
  Alcotest.(check int) "count" 50 (Array.length (gen 50))

let test_population_weights_normalized () =
  let p = gen 80 in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1. (Population.total_weight p)

let test_population_weights_positive () =
  Array.iter
    (fun (p : Prefix.t) ->
      Alcotest.(check bool) "positive weight" true (p.Prefix.weight > 0.))
    (gen 60)

let test_population_hosts_are_access_ases () =
  let t = Lazy.force topo in
  Array.iter
    (fun (p : Prefix.t) ->
      let klass = (Topology.asn t p.Prefix.asid).Asn.klass in
      Alcotest.(check bool) "eyeball or stub" true
        (klass = Asn.Eyeball || klass = Asn.Stub))
    (gen 60)

let test_population_city_in_footprint () =
  let t = Lazy.force topo in
  Array.iter
    (fun (p : Prefix.t) ->
      Alcotest.(check bool) "city in AS footprint" true
        (Asn.present_at (Topology.asn t p.Prefix.asid) p.Prefix.city))
    (gen 60)

let test_population_ids_dense () =
  let p = gen 40 in
  Array.iteri
    (fun i (pr : Prefix.t) -> Alcotest.(check int) "id = index" i pr.Prefix.id)
    p

let test_population_deterministic () =
  Alcotest.(check bool) "same seed same population" true (gen 30 = gen 30)

let test_population_seed_sensitivity () =
  Alcotest.(check bool) "different seed differs" true
    (gen ~seed:1 30 <> gen ~seed:2 30)

let test_population_skewed () =
  (* Zipf weighting: the heaviest prefix must far outweigh the
     lightest. *)
  let p = gen 100 in
  let ws = Array.map (fun (x : Prefix.t) -> x.Prefix.weight) p in
  Array.sort compare ws;
  Alcotest.(check bool) "heavy tail" true (ws.(99) > 10. *. ws.(0))

let test_population_invalid () =
  Alcotest.check_raises "n=0"
    (Invalid_argument "Population.generate: n_prefixes <= 0") (fun () ->
      ignore (gen 0))

let test_by_as_partition () =
  let p = gen 50 in
  let tbl = Population.by_as p in
  let total = Hashtbl.fold (fun _ l acc -> acc + List.length l) tbl 0 in
  Alcotest.(check int) "partition covers all" 50 total;
  Hashtbl.iter
    (fun asid l ->
      List.iter
        (fun (pr : Prefix.t) ->
          Alcotest.(check int) "grouped by AS" asid pr.Prefix.asid)
        l)
    tbl

(* ---- Window ---- *)

let test_window_count () =
  Alcotest.(check int) "96 windows per day" 96 (Window.count ~days:1. ~length_min:15.);
  Alcotest.(check int) "fifteen_minute list" 192
    (List.length (Window.fifteen_minute ~days:2.))

let test_window_coverage () =
  let ws = Window.windows ~days:1. ~length_min:60. in
  Alcotest.(check int) "24 windows" 24 (List.length ws);
  List.iteri
    (fun i (w : Window.t) ->
      Alcotest.(check int) "index" i w.Window.index;
      Alcotest.(check (float 1e-9)) "start" (float_of_int i *. 60.)
        w.Window.start_min)
    ws

let test_window_mid_time () =
  let w = { Window.index = 0; start_min = 30.; length_min = 15. } in
  Alcotest.(check (float 1e-9)) "midpoint" 37.5 (Window.mid_time w)

let test_window_fractional_days () =
  Alcotest.(check int) "half day" 48 (Window.count ~days:0.5 ~length_min:15.)

let suite =
  [
    Alcotest.test_case "population count" `Quick test_population_count;
    Alcotest.test_case "weights normalized" `Quick test_population_weights_normalized;
    Alcotest.test_case "weights positive" `Quick test_population_weights_positive;
    Alcotest.test_case "hosts are access ASes" `Quick test_population_hosts_are_access_ases;
    Alcotest.test_case "city in footprint" `Quick test_population_city_in_footprint;
    Alcotest.test_case "ids dense" `Quick test_population_ids_dense;
    Alcotest.test_case "deterministic" `Quick test_population_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_population_seed_sensitivity;
    Alcotest.test_case "zipf skew" `Quick test_population_skewed;
    Alcotest.test_case "invalid n" `Quick test_population_invalid;
    Alcotest.test_case "by_as partition" `Quick test_by_as_partition;
    Alcotest.test_case "window count" `Quick test_window_count;
    Alcotest.test_case "window coverage" `Quick test_window_coverage;
    Alcotest.test_case "window mid time" `Quick test_window_mid_time;
    Alcotest.test_case "fractional days" `Quick test_window_fractional_days;
  ]
