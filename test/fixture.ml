(* A hand-built mini-Internet with known-by-construction routes, used
   by the topology, BGP and latency tests.

       T1a(0) ===peer=== T1b(1)          (=== private peering @NY)
        |  \               |
        |   \(c2p @NY,@London)
        |    \             |
        |     CP(5)        |             CP: content provider
        |    /    \        |
       TR(2)    (peering)  |             TR: transit, customer of both T1s
        |      priv @CHI   |
       EB(3) --pub  @NY ---+             EB: eyeball, customer of TR
        |
       ST(4)                             ST: stub, customer of EB

   Destination of interest: CP (AS 5). *)

module World = Netsim_geo.World
module City = Netsim_geo.City
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Topology = Netsim_topo.Topology

let ny = (World.find_exn "New York").City.id
let london = (World.find_exn "London").City.id
let tokyo = (World.find_exn "Tokyo").City.id
let chicago = (World.find_exn "Chicago").City.id

let t1a = 0
let t1b = 1
let tr = 2
let eb = 3
let st = 4
let cp = 5

let mk_as id klass name footprint = { Asn.id; klass; name; footprint }

let mk_link id a b kind metro =
  { Relation.id; a; b; kind; metro; capacity_gbps = 100. }

(* Link ids, fixed so tests can reference them. *)
let l_t1_peer = 0 (* t1a <-> t1b, private @NY *)
let l_tr_t1a = 1 (* tr customer of t1a @NY *)
let l_tr_t1b = 2 (* tr customer of t1b @NY *)
let l_eb_tr = 3 (* eb customer of tr @Chicago *)
let l_st_eb = 4 (* st customer of eb @Chicago *)
let l_cp_t1a_ny = 5 (* cp customer of t1a @NY *)
let l_cp_t1a_lon = 6 (* cp customer of t1a @London *)
let l_cp_eb_priv = 7 (* cp private peer of eb @Chicago *)
let l_cp_eb_pub = 8 (* cp public peer of eb @NY *)

let topo () =
  let ases =
    [|
      mk_as t1a Asn.Tier1 "T1a" [| ny; london; tokyo |];
      mk_as t1b Asn.Tier1 "T1b" [| ny; tokyo |];
      mk_as tr Asn.Transit "TR" [| ny; chicago |];
      mk_as eb Asn.Eyeball "EB" [| chicago; ny |];
      mk_as st Asn.Stub "ST" [| chicago |];
      mk_as cp Asn.Content "CP" [| ny; chicago; london |];
    |]
  in
  let links =
    [
      mk_link l_t1_peer t1a t1b Relation.Peer_private ny;
      mk_link l_tr_t1a tr t1a Relation.C2p ny;
      mk_link l_tr_t1b tr t1b Relation.C2p ny;
      mk_link l_eb_tr eb tr Relation.C2p chicago;
      mk_link l_st_eb st eb Relation.C2p chicago;
      mk_link l_cp_t1a_ny cp t1a Relation.C2p ny;
      mk_link l_cp_t1a_lon cp t1a Relation.C2p london;
      mk_link l_cp_eb_priv cp eb Relation.Peer_private chicago;
      mk_link l_cp_eb_pub cp eb Relation.Peer_public ny;
    ]
  in
  Topology.make ases links
