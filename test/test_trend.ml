(* Bench-history robustness: a truncated or corrupt JSONL line (a run
   killed mid-append, a manual edit) is skipped with a warning instead
   of poisoning the gate, and the surviving records still feed the
   median. *)

module Trend = Bench_support.Trend

let check = Alcotest.(check bool)

let with_history f =
  let history = Filename.temp_file "trend" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove history) (fun () -> f history)

let append_raw history s =
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 history in
  output_string oc s;
  close_out oc

let test_truncated_last_line () =
  with_history @@ fun history ->
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 1.0 ];
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 2.0 ];
  (* A run killed mid-append leaves a partial JSON object with no
     closing braces and no newline. *)
  append_raw history "{\"schema_version\":1,\"bench\":\"t\",\"metrics\":{\"m\":3";
  Alcotest.(check (list (float 1e-9)))
    "corrupt tail skipped, valid records kept" [ 1.0; 2.0 ]
    (Trend.metric_values ~history ~bench:"t" "m")

let test_corrupt_middle_line () =
  with_history @@ fun history ->
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 1.0 ];
  append_raw history "not json at all\n";
  append_raw history "{\"bench\":\"t\" 12 oops}\n";
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 2.0 ];
  Alcotest.(check int)
    "both valid records survive" 2
    (List.length (Trend.records ~history ~bench:"t"))

let test_gate_survives_corruption () =
  with_history @@ fun history ->
  List.iter
    (fun v -> Trend.append ~history ~bench:"t" [ Trend.metric "m" v ])
    [ 10.0; 10.0; 10.0 ];
  append_raw history "{\"truncated";
  (* Within tolerance of the median of the surviving records. *)
  check "gate passes on clean value" true
    (Trend.gate ~history ~bench:"t" ~label:"test" [ Trend.metric "m" 10.5 ]);
  check "gate still fails a real regression" false
    (Trend.gate ~history ~bench:"t" ~label:"test" [ Trend.metric "m" 20.0 ])

let suite =
  [
    Alcotest.test_case "truncated last line is skipped" `Quick
      test_truncated_last_line;
    Alcotest.test_case "corrupt middle lines are skipped" `Quick
      test_corrupt_middle_line;
    Alcotest.test_case "gate works over a corrupted history" `Quick
      test_gate_survives_corruption;
  ]
