(* Bench-history robustness: a truncated or corrupt JSONL line (a run
   killed mid-append, a manual edit) is skipped with a warning instead
   of poisoning the gate, and the surviving records still feed the
   median. *)

module Trend = Bench_support.Trend

let check = Alcotest.(check bool)

let with_history f =
  let history = Filename.temp_file "trend" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove history) (fun () -> f history)

let append_raw history s =
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 history in
  output_string oc s;
  close_out oc

let test_truncated_last_line () =
  with_history @@ fun history ->
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 1.0 ];
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 2.0 ];
  (* A run killed mid-append leaves a partial JSON object with no
     closing braces and no newline. *)
  append_raw history "{\"schema_version\":1,\"bench\":\"t\",\"metrics\":{\"m\":3";
  Alcotest.(check (list (float 1e-9)))
    "corrupt tail skipped, valid records kept" [ 1.0; 2.0 ]
    (Trend.metric_values ~history ~bench:"t" "m")

let test_corrupt_middle_line () =
  with_history @@ fun history ->
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 1.0 ];
  append_raw history "not json at all\n";
  append_raw history "{\"bench\":\"t\" 12 oops}\n";
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 2.0 ];
  Alcotest.(check int)
    "both valid records survive" 2
    (List.length (Trend.records ~history ~bench:"t" ()))

let test_gate_survives_corruption () =
  with_history @@ fun history ->
  List.iter
    (fun v -> Trend.append ~history ~bench:"t" [ Trend.metric "m" v ])
    [ 10.0; 10.0; 10.0 ];
  append_raw history "{\"truncated";
  (* Within tolerance of the median of the surviving records. *)
  check "gate passes on clean value" true
    (Trend.gate ~history ~bench:"t" ~label:"test" [ Trend.metric "m" 10.5 ]);
  check "gate still fails a real regression" false
    (Trend.gate ~history ~bench:"t" ~label:"test" [ Trend.metric "m" 20.0 ])

(* Two benches share one history file (the repo convention: every
   micro_* appends to BENCH_history.jsonl).  Bench "slow"'s records
   must never feed bench "fast"'s median: if they did, fast's 10 ns
   metric would "regress" against slow's 1000 ns baseline — or worse,
   a real regression in fast would hide under slow's records. *)
let test_no_cross_bench_gating () =
  with_history @@ fun history ->
  List.iter
    (fun v -> Trend.append ~history ~bench:"slow" [ Trend.metric "m" v ])
    [ 1000.0; 1000.0; 1000.0 ];
  List.iter
    (fun v -> Trend.append ~history ~bench:"fast" [ Trend.metric "m" v ])
    [ 10.0; 10.0; 10.0 ];
  Alcotest.(check (list (float 1e-9)))
    "fast reads only its own records" [ 10.0; 10.0; 10.0 ]
    (Trend.metric_values ~history ~bench:"fast" "m");
  check "fast gates against fast's median" true
    (Trend.gate ~history ~bench:"fast" ~label:"test" [ Trend.metric "m" 10.5 ]);
  check "a real regression in fast is not hidden by slow's baseline" false
    (Trend.gate ~history ~bench:"fast" ~label:"test" [ Trend.metric "m" 20.0 ])

(* One bench, two workload variants in the same file (micro_scale's
   per-size records).  A variant-tagged gate must see only its
   variant's records, and an untagged gate only untagged records. *)
let test_no_cross_variant_gating () =
  with_history @@ fun history ->
  List.iter
    (fun v ->
      Trend.append ~history ~bench:"t" ~variant:"big" [ Trend.metric "m" v ])
    [ 1000.0; 1000.0; 1000.0 ];
  List.iter
    (fun v ->
      Trend.append ~history ~bench:"t" ~variant:"small" [ Trend.metric "m" v ])
    [ 10.0; 10.0; 10.0 ];
  Trend.append ~history ~bench:"t" [ Trend.metric "m" 500.0 ];
  Alcotest.(check (list (float 1e-9)))
    "variant-tagged reads are isolated" [ 10.0; 10.0; 10.0 ]
    (Trend.metric_values ~history ~bench:"t" ~variant:"small" "m");
  Alcotest.(check (list (float 1e-9)))
    "untagged reads see only untagged records" [ 500.0 ]
    (Trend.metric_values ~history ~bench:"t" "m");
  check "small variant gates against its own median" true
    (Trend.gate ~history ~bench:"t" ~variant:"small" ~label:"test"
       [ Trend.metric "m" 10.5 ]);
  check "a regression within a variant still fails" false
    (Trend.gate ~history ~bench:"t" ~variant:"small" ~label:"test"
       [ Trend.metric "m" 20.0 ]);
  check "big variant is undisturbed by small's records" true
    (Trend.gate ~history ~bench:"t" ~variant:"big" ~label:"test"
       [ Trend.metric "m" 1001.0 ])

let suite =
  [
    Alcotest.test_case "truncated last line is skipped" `Quick
      test_truncated_last_line;
    Alcotest.test_case "corrupt middle lines are skipped" `Quick
      test_corrupt_middle_line;
    Alcotest.test_case "gate works over a corrupted history" `Quick
      test_gate_survives_corruption;
    Alcotest.test_case "benches sharing a history do not cross-gate" `Quick
      test_no_cross_bench_gating;
    Alcotest.test_case "variants sharing a bench do not cross-gate" `Quick
      test_no_cross_variant_gating;
  ]
