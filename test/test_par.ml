(* Domain-pool tests: the parallel==sequential contract.  Pool.map
   must be observationally identical to Array.map for any domain
   count — same results, same order, same exception, and (with
   tracing on) byte-identical merged metrics and an identical span
   tree.  Top-level figures built on the pool (robustness sweeps,
   egress shards inside the scenarios) must therefore be
   domain-count-invariant too. *)

module Pool = Netsim_par.Pool
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Metrics = Netsim_obs.Metrics
module Span = Netsim_obs.Span
module Jsonx = Netsim_obs.Jsonx

let with_domains d f =
  let saved = Pool.domain_count () in
  Pool.set_domain_count d;
  Fun.protect ~finally:(fun () -> Pool.set_domain_count saved) f

let domains_gen = QCheck.int_range 1 4

(* ---- Pool.map == Array.map ---- *)

let prop_map_matches_array_map =
  QCheck.Test.make ~name:"Pool.map equals Array.map (any domain count)"
    ~count:50
    QCheck.(pair domains_gen (array small_int))
    (fun (d, arr) ->
      let f x = (x * 31) + (x mod 7) in
      with_domains d (fun () -> Pool.map f arr) = Array.map f arr)

let prop_mapi_order =
  QCheck.Test.make ~name:"Pool.mapi preserves indices and order" ~count:50
    QCheck.(pair domains_gen (int_range 0 200))
    (fun (d, n) ->
      let arr = Array.init n (fun i -> i * 3) in
      with_domains d (fun () -> Pool.mapi (fun i x -> (i, x)) arr)
      = Array.mapi (fun i x -> (i, x)) arr)

let prop_nested_map_sequentializes =
  QCheck.Test.make ~name:"nested Pool.map runs and matches nested Array.map"
    ~count:25
    QCheck.(pair domains_gen (int_range 1 20))
    (fun (d, n) ->
      let outer = Array.init n (fun i -> i) in
      let inner i = Array.init (1 + (i mod 5)) (fun j -> (i * 10) + j) in
      let via_pool =
        with_domains d (fun () ->
            Pool.map (fun i -> Pool.map (fun x -> x + 1) (inner i)) outer)
      in
      via_pool = Array.map (fun i -> Array.map (fun x -> x + 1) (inner i)) outer)

(* ---- parallel BGP propagation == sequential ---- *)

let random_topo seed =
  Netsim_topo.Generator.generate
    {
      Netsim_topo.Generator.small_params with
      Netsim_topo.Generator.seed;
      n_tier1 = 2 + (seed mod 3);
      n_transit = 4 + (seed mod 4);
      n_eyeball = 6 + (seed mod 6);
      n_stub = 4 + (seed mod 5);
    }

let prop_parallel_propagation_identical =
  QCheck.Test.make
    ~name:"sharded propagation digests equal sequential (domains 1-4)"
    ~count:15
    (QCheck.pair domains_gen (QCheck.int_range 0 200))
    (fun (d, seed) ->
      let topo = random_topo seed in
      let origins =
        Array.of_list (Topology.by_klass topo Asn.Eyeball)
      in
      let digest_of states =
        Array.to_list (Array.map (Test_util.digest topo) states)
      in
      let seq =
        digest_of
          (Array.map (fun o -> Propagate.run topo (Announce.default ~origin:o)) origins)
      in
      let par =
        with_domains d (fun () ->
            digest_of
              (Pool.map
                 (fun o -> Propagate.run topo (Announce.default ~origin:o))
                 origins))
      in
      par = seq)

(* ---- exceptions ---- *)

let test_exception_propagates () =
  List.iter
    (fun d ->
      match
        with_domains d (fun () ->
            Pool.map
              (fun i -> if i >= 3 then failwith (Printf.sprintf "task %d" i) else i)
              (Array.init 16 (fun i -> i)))
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "lowest failing index wins at %d domains" d)
            "task 3" msg)
    [ 1; 2; 4 ]

let test_empty_and_singleton () =
  List.iter
    (fun d ->
      with_domains d (fun () ->
          Alcotest.(check (array int)) "empty" [||] (Pool.map (fun x -> x) [||]);
          Alcotest.(check (array int)) "singleton" [| 9 |]
            (Pool.map (fun x -> x + 4) [| 5 |])))
    [ 1; 4 ]

let test_domain_count_clamped () =
  let saved = Pool.domain_count () in
  Fun.protect ~finally:(fun () -> Pool.set_domain_count saved) @@ fun () ->
  Pool.set_domain_count 0;
  Alcotest.(check int) "clamped up to 1" 1 (Pool.domain_count ());
  Pool.set_domain_count 1000;
  Alcotest.(check int) "clamped down to 64" 64 (Pool.domain_count ())

(* ---- robustness sweep is domain-count-invariant ---- *)

let test_robustness_domain_invariant () =
  let run d =
    with_domains d (fun () ->
        Beatbgp.Robustness.run ~seeds:[ 42; 43 ]
          ~sizes:Beatbgp.Scenario.test_sizes ())
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool)
    "claim summaries identical (values, pass rates, order)" true
    (r1.Beatbgp.Robustness.claims = r4.Beatbgp.Robustness.claims);
  Alcotest.(check bool) "figures identical" true
    (Beatbgp.Figure.to_csv r1.Beatbgp.Robustness.figure
    = Beatbgp.Figure.to_csv r4.Beatbgp.Robustness.figure);
  Alcotest.(check (float 0.)) "pass rate identical"
    r1.Beatbgp.Robustness.all_pass_rate r4.Beatbgp.Robustness.all_pass_rate

(* ---- merged observability is byte-identical ---- *)

let rec span_shape (i : Span.info) =
  Printf.sprintf "%s/%d%s(%s)" i.Span.i_name i.Span.i_calls
    (String.concat ""
       (List.map (fun (n, v) -> Printf.sprintf "[%s=%d]" n v) i.Span.i_counters))
    (String.concat ";" (List.map span_shape i.Span.i_children))

let traced_run d =
  with_domains d (fun () ->
      Metrics.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Metrics.set_enabled false;
          Metrics.reset ();
          Span.reset ())
        (fun () ->
          Metrics.reset ();
          Span.reset ();
          Span.with_ ~name:"t.par.fanout" (fun () ->
              ignore
                (Pool.mapi
                   (fun i o ->
                     Span.with_ ~name:"t.par.task" (fun () ->
                         Metrics.incr ~by:(i + 1) (Metrics.counter "t.par.work");
                         Metrics.observe
                           (Metrics.histogram "t.par.obs")
                           (float_of_int (i * 7) +. 0.5);
                         Metrics.set (Metrics.gauge "t.par.last") (float_of_int i);
                         let topo = random_topo 3 in
                         ignore (Propagate.run topo (Announce.default ~origin:o));
                         i))
                   (Array.of_list
                      (Topology.by_klass (random_topo 3) Asn.Eyeball))));
          ( Jsonx.to_string (Metrics.to_json ()),
            String.concat "," (List.map span_shape (Span.tree ())) )))

let test_metrics_byte_identical () =
  let j1, s1 = traced_run 1 in
  let j4, s4 = traced_run 4 in
  Alcotest.(check string) "metrics JSON byte-identical (1 vs 4 domains)" j1 j4;
  Alcotest.(check string) "span tree identical (1 vs 4 domains)" s1 s4

let test_gauge_last_write_submission_order () =
  with_domains 4 @@ fun () ->
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      ignore
        (Pool.map
           (fun i -> Metrics.set (Metrics.gauge "t.par.g") (float_of_int i))
           (Array.init 32 (fun i -> i)));
      Alcotest.(check (float 0.))
        "gauge holds the last task's write (submission order)" 31.
        (Metrics.gauge_value (Metrics.gauge "t.par.g")))

(* ---- traced scenario: end-to-end through the egress shard ---- *)

let test_scenario_trace_domain_invariant () =
  let run d =
    with_domains d (fun () ->
        Metrics.set_enabled true;
        Fun.protect
          ~finally:(fun () ->
            Metrics.set_enabled false;
            Metrics.reset ();
            Span.reset ())
          (fun () ->
            Metrics.reset ();
            Span.reset ();
            ignore
              (Beatbgp.Scenario.facebook ~sizes:Beatbgp.Scenario.test_sizes ());
            ( Jsonx.to_string (Metrics.to_json ()),
              String.concat "," (List.map span_shape (Span.tree ())) )))
  in
  let j1, s1 = run 1 and j4, s4 = run 4 in
  Alcotest.(check string) "scenario metrics JSON byte-identical" j1 j4;
  Alcotest.(check string) "scenario span tree identical" s1 s4

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_map_matches_array_map;
      prop_mapi_order;
      prop_nested_map_sequentializes;
      prop_parallel_propagation_identical;
    ]
  @ [
      Alcotest.test_case "exceptions propagate (lowest index)" `Quick
        test_exception_propagates;
      Alcotest.test_case "empty and singleton inputs" `Quick
        test_empty_and_singleton;
      Alcotest.test_case "domain count clamped to [1, 64]" `Quick
        test_domain_count_clamped;
      Alcotest.test_case "robustness sweep domain-invariant" `Slow
        test_robustness_domain_invariant;
      Alcotest.test_case "merged metrics byte-identical" `Quick
        test_metrics_byte_identical;
      Alcotest.test_case "gauge last-write follows submission order" `Quick
        test_gauge_last_write_submission_order;
      Alcotest.test_case "scenario trace domain-invariant" `Slow
        test_scenario_trace_domain_invariant;
    ]
