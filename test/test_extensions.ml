(* Tests for the §4 / open-question extensions: link failures,
   goodput, availability, hybrid redirection, split TCP, site density
   and the ECS ablation. *)

module Sm = Netsim_prng.Splitmix
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Params = Netsim_latency.Params
module Congestion = Netsim_latency.Congestion
module Goodput = Netsim_latency.Goodput
module Rtt = Netsim_latency.Rtt
module Walk = Netsim_bgp.Walk
module S = Beatbgp.Scenario
open Fixture

let sizes = S.test_sizes

(* ---- Topology.remove_links ---- *)

let test_remove_links_drops_adjacency () =
  let t = topo () in
  let t' = Topology.remove_links t [ l_cp_eb_priv; l_cp_eb_pub ] in
  Alcotest.(check (list int)) "cp loses its peer" []
    (Topology.peers t' cp);
  Alcotest.(check int) "two fewer links" (Topology.link_count t - 2)
    (Topology.link_count t')

let test_remove_links_preserves_ids () =
  let t = topo () in
  let t' = Topology.remove_links t [ l_t1_peer ] in
  Array.iter
    (fun (l : Relation.link) ->
      let original = (Topology.links t).(l.Relation.id) in
      Alcotest.(check int) "id still resolves" l.Relation.id
        original.Relation.id)
    (Topology.links t')

let test_remove_links_unknown_ignored () =
  let t = topo () in
  let t' = Topology.remove_links t [ 999 ] in
  Alcotest.(check int) "nothing removed" (Topology.link_count t)
    (Topology.link_count t')

let test_remove_links_of_as () =
  let t = topo () in
  let t' = Topology.remove_links_of_as t cp in
  Alcotest.(check int) "cp isolated" 0 (List.length (Topology.neighbors t' cp));
  let s = Propagate.run t' (Announce.default ~origin:cp) in
  Alcotest.(check bool) "cp unreachable" false (Propagate.reachable s eb)

let test_failure_reroutes () =
  (* Fail the private peer session: the eyeball reconverges to its
     public session; fail both: to the transit chain. *)
  let t = topo () in
  let t1 = Topology.remove_links t [ l_cp_eb_priv ] in
  let s1 = Propagate.run t1 (Announce.default ~origin:cp) in
  (match Propagate.best s1 eb with
  | Some r ->
      Alcotest.(check int) "fails over to public session" l_cp_eb_pub
        r.Netsim_bgp.Route.via_link.Relation.id
  | None -> Alcotest.fail "unreachable after single failure")

(* ---- Goodput ---- *)

let goodput_env () =
  let t = topo () in
  let s = Propagate.run t (Announce.default ~origin:cp) in
  let cong = Congestion.create Params.default t ~seed:4 in
  let walk =
    match Walk.of_source s ~src:st with
    | Some w -> w
    | None -> Alcotest.fail "no walk"
  in
  (cong, Rtt.make_flow ~access:(Congestion.Access 1)
           ~terminal:Netsim_latency.Propagation.At_entry walk)

let test_mathis_monotonic () =
  let g rtt loss = Goodput.mathis_mbps ~mss_bytes:1460 ~rtt_ms:rtt ~loss in
  Alcotest.(check bool) "lower rtt, more goodput" true (g 10. 1e-4 > g 50. 1e-4);
  Alcotest.(check bool) "lower loss, more goodput" true (g 20. 1e-5 > g 20. 1e-3)

let test_mathis_finite_on_clean_path () =
  let v = Goodput.mathis_mbps ~mss_bytes:1460 ~rtt_ms:10. ~loss:0. in
  Alcotest.(check bool) "finite" true (Float.is_finite v && v > 0.)

let test_link_loss_grows_with_util () =
  let cong, _ = goodput_env () in
  Congestion.set_offered_load cong ~link_id:0 ~gbps:30.;
  let low = Goodput.link_loss_rate cong ~link_id:0 ~time_min:0. in
  Congestion.set_offered_load cong ~link_id:0 ~gbps:96.;
  let high = Goodput.link_loss_rate cong ~link_id:0 ~time_min:0. in
  Alcotest.(check bool) "loss grows" true (high > low);
  Alcotest.(check bool) "loss is a probability" true (high < 1.)

let test_path_loss_compounds () =
  let cong, flow = goodput_env () in
  let p = Goodput.path_loss_rate cong flow.Rtt.walk ~time_min:0. in
  Alcotest.(check bool) "in (0,1)" true (p > 0. && p < 1.)

let test_flow_goodput_positive_and_capped () =
  let cong, flow = goodput_env () in
  let rng = Sm.create 5 in
  let v = Goodput.flow_goodput_mbps cong ~rng ~time_min:60. flow in
  Alcotest.(check bool) "positive" true (v > 0.);
  Alcotest.(check bool) "capped by the access rate" true
    (v <= Congestion.access_rate_mbps cong 1 +. 1e-9)

let test_access_rate_stable () =
  let cong, _ = goodput_env () in
  Alcotest.(check (float 1e-12)) "stable" (Congestion.access_rate_mbps cong 3)
    (Congestion.access_rate_mbps cong 3);
  Alcotest.(check bool) "positive" true (Congestion.access_rate_mbps cong 3 > 0.)

(* ---- Experiment pipelines at test scale ---- *)

let fb = lazy (S.facebook ~sizes ())
let ms = lazy (S.microsoft ~sizes ())
let gc = lazy (S.google ~sizes ~n_vantage:200 ())

let test_goodput_experiment () =
  let r = Beatbgp.Goodput_egress.run (Lazy.force fb) in
  Alcotest.(check bool) "ratios measured" true
    (r.Beatbgp.Goodput_egress.ratios <> []);
  List.iter
    (fun (ratio, w) ->
      Alcotest.(check bool) "ratio positive" true (ratio > 0.);
      Alcotest.(check bool) "weight positive" true (w > 0.))
    r.Beatbgp.Goodput_egress.ratios;
  let median = Beatbgp.Figure.stat r.Beatbgp.Goodput_egress.figure "median_ratio" in
  Alcotest.(check bool) "median ratio near 1" true (median >= 0.8 && median <= 1.5)

let test_availability_experiment () =
  let r = Beatbgp.Availability.run (Lazy.force ms) in
  Alcotest.(check bool) "failures simulated" true
    (r.Beatbgp.Availability.failures <> []);
  List.iter
    (fun (f : Beatbgp.Availability.site_failure) ->
      let in01 v = v >= 0. && v <= 1. in
      Alcotest.(check bool) "shares bounded" true
        (in01 f.Beatbgp.Availability.affected_share
        && in01 f.Beatbgp.Availability.stranded_share
        && in01 f.Beatbgp.Availability.dns_outage_share);
      Alcotest.(check bool) "outage = share * ttl" true
        (Float.abs
           (f.Beatbgp.Availability.dns_outage_client_seconds
           -. (f.Beatbgp.Availability.dns_outage_share *. 300.))
        < 1e-6))
    r.Beatbgp.Availability.failures

let test_availability_anycast_never_strands () =
  (* Rich connectivity: losing one site must not strand clients. *)
  let r = Beatbgp.Availability.run (Lazy.force ms) in
  List.iter
    (fun (f : Beatbgp.Availability.site_failure) ->
      Alcotest.(check bool) "stranded ~0" true
        (f.Beatbgp.Availability.stranded_share < 0.02))
    r.Beatbgp.Availability.failures

let test_hybrid_margin_monotone () =
  let r = Beatbgp.Hybrid.run (Lazy.force ms) in
  let points = r.Beatbgp.Hybrid.points in
  Alcotest.(check int) "five margins" 5 (List.length points);
  (* Redirected fraction and regressions shrink as margin grows. *)
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "redirected non-increasing" true
          (b.Beatbgp.Hybrid.redirected_fraction
          <= a.Beatbgp.Hybrid.redirected_fraction +. 1e-9);
        pairwise rest
    | _ -> ()
  in
  pairwise points;
  match (List.nth_opt points 0, List.nth_opt points 4) with
  | Some agg, Some cons ->
      Alcotest.(check bool) "regressions shrink" true
        (cons.Beatbgp.Hybrid.frac_worse <= agg.Beatbgp.Hybrid.frac_worse +. 1e-9)
  | _ -> Alcotest.fail "missing points"

let test_split_tcp_experiment () =
  let r = Beatbgp.Split_tcp.run (Lazy.force gc) in
  Alcotest.(check bool) "points" true (r.Beatbgp.Split_tcp.points <> []);
  (* Splitting always helps when the edge is closer than the DC. *)
  Alcotest.(check bool) "split saves latency" true
    (r.Beatbgp.Split_tcp.median_saving_wan_ms > 0.);
  List.iter
    (fun (p : Beatbgp.Split_tcp.per_vp) ->
      Alcotest.(check bool) "all designs positive" true
        (p.Beatbgp.Split_tcp.direct_ms > 0.
        && p.Beatbgp.Split_tcp.split_wan_ms > 0.
        && p.Beatbgp.Split_tcp.split_public_ms > 0.);
      Alcotest.(check bool) "WAN backend no slower than public" true
        (p.Beatbgp.Split_tcp.split_wan_ms
        <= p.Beatbgp.Split_tcp.split_public_ms +. 1e-6))
    r.Beatbgp.Split_tcp.points

let test_site_density_monotone_tendency () =
  let r = Beatbgp.Site_density.run ~sizes ~site_counts:[ 6; 36 ] () in
  match r.Beatbgp.Site_density.points with
  | [ sparse; dense ] ->
      Alcotest.(check bool) "more sites, lower median RTT" true
        (dense.Beatbgp.Site_density.median_rtt_ms
        < sparse.Beatbgp.Site_density.median_rtt_ms);
      Alcotest.(check bool) "more sites, fewer mis-catches" true
        (dense.Beatbgp.Site_density.miscatch_share
        <= sparse.Beatbgp.Site_density.miscatch_share +. 0.05)
  | _ -> Alcotest.fail "expected two points"

let test_ecs_ablation_kills_regressions () =
  let r = Beatbgp.Ecs_ablation.run ~sizes ~adoptions:[ 0.001; 1.0 ] () in
  match r.Beatbgp.Ecs_ablation.points with
  | [ today; full ] ->
      Alcotest.(check bool) "full ECS reduces regressions" true
        (full.Beatbgp.Ecs_ablation.frac_worse
        <= today.Beatbgp.Ecs_ablation.frac_worse +. 1e-9)
  | _ -> Alcotest.fail "expected two points"

let test_peering_ablation_small () =
  let r =
    Beatbgp.Peering_ablation.run ~fractions:[ 1.0; 0.1 ] ~sizes ()
  in
  match r.Beatbgp.Peering_ablation.points with
  | [ full; starved ] ->
      Alcotest.(check (float 1e-9)) "fractions recorded" 1.0
        full.Beatbgp.Peering_ablation.peer_fraction;
      Alcotest.(check bool) "fewer peers at 10%" true
        (starved.Beatbgp.Peering_ablation.pni_count
        <= full.Beatbgp.Peering_ablation.pni_count);
      Alcotest.(check bool) "peer-route share drops" true
        (starved.Beatbgp.Peering_ablation.peer_route_share
        <= full.Beatbgp.Peering_ablation.peer_route_share +. 1e-9);
      Alcotest.(check bool) "latency does not improve" true
        (starved.Beatbgp.Peering_ablation.median_ms
        >= full.Beatbgp.Peering_ablation.median_ms -. 3.)
  | _ -> Alcotest.fail "expected two points"

let test_groom_predict () =
  let r = Beatbgp.Groom_predict.run ~max_actions:5 (Lazy.force ms) in
  Alcotest.(check bool) "actions evaluated" true
    (r.Beatbgp.Groom_predict.actions <> []);
  List.iter
    (fun (a : Beatbgp.Groom_predict.action_eval) ->
      Alcotest.(check bool) "affected weight bounded" true
        (a.Beatbgp.Groom_predict.affected_weight >= 0.
        && a.Beatbgp.Groom_predict.affected_weight <= 1.);
      if not (Float.is_nan a.Beatbgp.Groom_predict.predicted_correct) then
        Alcotest.(check bool) "accuracy bounded" true
          (a.Beatbgp.Groom_predict.predicted_correct >= 0.
          && a.Beatbgp.Groom_predict.predicted_correct <= 1.))
    r.Beatbgp.Groom_predict.actions

let test_grooming_small () =
  let r = Beatbgp.Grooming.run ~rounds:2 (Lazy.force ms) in
  Alcotest.(check int) "three rounds recorded" 3
    (List.length r.Beatbgp.Grooming.rounds);
  Alcotest.(check bool) "actions applied" true
    (r.Beatbgp.Grooming.total_actions > 0)

let test_robustness_small () =
  (* Two seeds at test scale: the harness machinery must aggregate
     claims correctly (actual pass rates are checked at full scale by
     the CLI / robustness command). *)
  let r = Beatbgp.Robustness.run ~seeds:[ 7; 8 ] ~sizes () in
  Alcotest.(check int) "two seeds" 2 (List.length r.Beatbgp.Robustness.seeds);
  Alcotest.(check bool) "claims aggregated" true
    (r.Beatbgp.Robustness.claims <> []);
  List.iter
    (fun (c : Beatbgp.Robustness.claim_summary) ->
      Alcotest.(check bool) "pass rate bounded" true
        (c.Beatbgp.Robustness.pass_rate >= 0.
        && c.Beatbgp.Robustness.pass_rate <= 1.);
      Alcotest.(check bool) "min <= mean <= max" true
        (c.Beatbgp.Robustness.min <= c.Beatbgp.Robustness.mean +. 1e-9
        && c.Beatbgp.Robustness.mean <= c.Beatbgp.Robustness.max +. 1e-9))
    r.Beatbgp.Robustness.claims

let suite =
  [
    Alcotest.test_case "robustness harness" `Slow test_robustness_small;
    Alcotest.test_case "remove_links adjacency" `Quick test_remove_links_drops_adjacency;
    Alcotest.test_case "remove_links preserves ids" `Quick test_remove_links_preserves_ids;
    Alcotest.test_case "remove_links unknown" `Quick test_remove_links_unknown_ignored;
    Alcotest.test_case "remove_links_of_as" `Quick test_remove_links_of_as;
    Alcotest.test_case "failure reroutes" `Quick test_failure_reroutes;
    Alcotest.test_case "mathis monotonic" `Quick test_mathis_monotonic;
    Alcotest.test_case "mathis finite" `Quick test_mathis_finite_on_clean_path;
    Alcotest.test_case "loss grows with util" `Quick test_link_loss_grows_with_util;
    Alcotest.test_case "path loss compounds" `Quick test_path_loss_compounds;
    Alcotest.test_case "flow goodput capped" `Quick test_flow_goodput_positive_and_capped;
    Alcotest.test_case "access rate stable" `Quick test_access_rate_stable;
    Alcotest.test_case "goodput experiment" `Slow test_goodput_experiment;
    Alcotest.test_case "availability experiment" `Slow test_availability_experiment;
    Alcotest.test_case "availability no stranding" `Slow test_availability_anycast_never_strands;
    Alcotest.test_case "hybrid margin monotone" `Slow test_hybrid_margin_monotone;
    Alcotest.test_case "split tcp" `Slow test_split_tcp_experiment;
    Alcotest.test_case "site density" `Slow test_site_density_monotone_tendency;
    Alcotest.test_case "ecs ablation" `Slow test_ecs_ablation_kills_regressions;
    Alcotest.test_case "peering ablation small" `Slow test_peering_ablation_small;
    Alcotest.test_case "grooming small" `Slow test_grooming_small;
    Alcotest.test_case "groom predict" `Slow test_groom_predict;
  ]
