(* The internet-scale batching contract, differentially tested:

   1. [Propagate.run_batch] must be entry-for-entry equal to N
      independent [Propagate.run] calls — for random hierarchies,
      origin sets (duplicates included), domain counts, RIB cache
      on/off and provenance on/off, end to end through
      [Rib_cache.run_batch] and [Pool.map_batches].

   2. The scale/shape topology constructors are total: degenerate
      shapes (single AS, max-degree star, provider chain, AS count at
      the 2^20 packed cap) build valid CSR arenas and never raise;
      out-of-cap inputs return [Error]. *)

module Sm = Netsim_prng.Splitmix
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Invariants = Netsim_topo.Invariants
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Pool = Netsim_par.Pool

let check = Alcotest.(check bool)

(* Randomized small Internets, as in test_properties. *)
let random_topo seed =
  let params =
    {
      Generator.small_params with
      Generator.seed;
      n_tier1 = 2 + (seed mod 3);
      n_transit = 4 + (seed mod 5);
      n_eyeball = 8 + (seed mod 10);
      n_stub = 6 + (seed mod 8);
    }
  in
  Generator.generate params

(* [k] origins spread over all ASes; deliberately allows duplicates
   (a batch must compute duplicated configs independently, and the
   cache must hit on them). *)
let pick_origins topo seed k =
  let n = Topology.as_count topo in
  Array.init k (fun j -> ((seed * 7) + (j * 13)) mod n)

let with_domains d f =
  let saved = Pool.domain_count () in
  Pool.set_domain_count d;
  Fun.protect ~finally:(fun () -> Pool.set_domain_count saved) f

let with_cache on f =
  let saved = Rib_cache.enabled () in
  Rib_cache.set_enabled on;
  Rib_cache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Rib_cache.clear ();
      Rib_cache.set_enabled saved)
    f

(* Per-origin equality of a batched state against an independent run:
   routing entries, provenance arenas, and the queryable decision
   chain of every AS. *)
let state_equals_solo topo config ~pv st =
  let solo = Propagate.run ~provenance:pv topo config in
  Propagate.equal st solo
  && Propagate.provenance_equal st solo
  &&
  if not pv then true
  else begin
    let n = Topology.as_count topo in
    let ok = ref true in
    for x = 0 to n - 1 do
      if Propagate.decision st x <> Propagate.decision solo x then ok := false
    done;
    !ok
  end

let seed_gen = QCheck.int_range 0 500

let prop_batch_equals_sequential =
  QCheck.Test.make
    ~name:"run_batch == N independent runs (origins 1-16, provenance on/off)"
    ~count:25
    QCheck.(pair seed_gen (int_range 1 16))
    (fun (seed, k) ->
      let topo = random_topo seed in
      let origins = pick_origins topo seed k in
      let configs = Array.map (fun origin -> Announce.default ~origin) origins in
      List.for_all
        (fun pv ->
          let batched = Propagate.run_batch ~provenance:pv topo configs in
          Array.length batched = k
          && Array.for_all Fun.id
               (Array.mapi
                  (fun i st -> state_equals_solo topo configs.(i) ~pv st)
                  batched))
        [ false; true ])

let prop_batch_through_cache_and_pool =
  QCheck.Test.make
    ~name:
      "map_batches(Rib_cache.run_batch) == independent runs (domains 1/4, \
       cache on/off)"
    ~count:12
    QCheck.(quad seed_gen (int_range 1 16) (int_range 1 4) bool)
    (fun (seed, k, domains, cache_on) ->
      let topo = random_topo seed in
      let origins = pick_origins topo seed k in
      let configs = Array.map (fun origin -> Announce.default ~origin) origins in
      let batch = 1 + (seed mod 8) in
      with_domains domains @@ fun () ->
      with_cache cache_on @@ fun () ->
      let states =
        Pool.map_batches ~batch
          (fun chunk -> Rib_cache.run_batch topo chunk)
          configs
      in
      Array.length states = k
      && Array.for_all Fun.id
           (Array.mapi
              (fun i st ->
                Propagate.equal st (Propagate.run topo configs.(i)))
              states))

let prop_batch_provenance_through_cache =
  QCheck.Test.make
    ~name:"Rib_cache.run_batch ~provenance preserves decision chains"
    ~count:10
    QCheck.(pair seed_gen (int_range 1 8))
    (fun (seed, k) ->
      let topo = random_topo seed in
      let origins = pick_origins topo seed k in
      let configs = Array.map (fun origin -> Announce.default ~origin) origins in
      with_cache true @@ fun () ->
      let states = Rib_cache.run_batch ~provenance:true topo configs in
      Array.for_all Fun.id
        (Array.mapi
           (fun i st -> state_equals_solo topo configs.(i) ~pv:true st)
           states))

(* ---- topology generator totality -------------------------------------- *)

(* The CSR arena must agree with the list-based adjacency in content
   and order, with offsets that tile the word array exactly. *)
let csr_consistent topo =
  let n = Topology.as_count topo in
  let off = Topology.csr_offsets topo and wrd = Topology.csr_words topo in
  Array.length off = n + 1
  && off.(0) = 0
  && off.(n) = Array.length wrd
  && off.(n) = 2 * Topology.link_count topo
  &&
  let ok = ref true in
  for x = 0 to n - 1 do
    if off.(x) > off.(x + 1) then ok := false;
    let nbs = Topology.neighbors topo x in
    if List.length nbs <> off.(x + 1) - off.(x) then ok := false
    else
      List.iteri
        (fun i (nb : Topology.neighbor) ->
          let pn = wrd.(off.(x) + i) in
          if
            Topology.pn_peer pn <> nb.peer
            || Topology.pn_rel pn <> nb.rel
            || Topology.pn_link pn <> nb.link.Relation.id
          then ok := false)
        nbs
  done;
  !ok

let test_shapes_total () =
  let ok_and_valid shape label =
    match Generator.generate_shape shape with
    | Error e -> Alcotest.failf "%s: unexpected error: %s" label e
    | Ok topo -> check (label ^ " CSR valid") true (csr_consistent topo)
  in
  ok_and_valid Generator.Single "single AS";
  ok_and_valid (Generator.Star 0) "star with no spokes";
  ok_and_valid (Generator.Star 1) "star with one spoke";
  ok_and_valid (Generator.Star 1000) "star 1000";
  ok_and_valid (Generator.Chain 1) "chain of one";
  ok_and_valid (Generator.Chain 2) "chain of two";
  ok_and_valid (Generator.Chain 500) "chain 500";
  let is_error = function Error _ -> true | Ok _ -> false in
  check "negative star is an Error" true
    (is_error (Generator.generate_shape (Generator.Star (-1))));
  check "zero chain is an Error" true
    (is_error (Generator.generate_shape (Generator.Chain 0)));
  check "star over the AS cap is an Error" true
    (is_error (Generator.generate_shape (Generator.Star Topology.max_as_count)));
  check "chain over the AS cap is an Error" true
    (is_error
       (Generator.generate_shape (Generator.Chain (Topology.max_as_count + 1))))

(* The largest valid star: hub AS 0 with 2^20 - 1 stub customers — AS
   ids hit the packed cap exactly and one CSR row holds ~10^6 words. *)
let test_star_at_cap () =
  match Generator.generate_shape (Generator.Star (Topology.max_as_count - 1)) with
  | Error e -> Alcotest.failf "star at cap: unexpected error: %s" e
  | Ok topo ->
      Alcotest.(check int)
        "AS count at cap" Topology.max_as_count (Topology.as_count topo);
      let off = Topology.csr_offsets topo in
      Alcotest.(check int)
        "hub degree" (Topology.max_as_count - 1)
        (off.(1) - off.(0));
      (* Spot-check words rather than run the O(n) full consistency
         scan against the list adjacency (the row is a million wide). *)
      let wrd = Topology.csr_words topo in
      check "hub row words decode to customers" true
        (Topology.pn_rel wrd.(off.(0)) = Relation.To_customer);
      check "spoke row decodes to the hub" true
        (Topology.pn_peer wrd.(off.(Topology.max_as_count - 1)) = 0)

let prop_random_shapes_never_raise =
  QCheck.Test.make ~name:"generate_shape is total on random sizes" ~count:50
    (QCheck.int_range (-3) 3000)
    (fun n ->
      let shapes = [ Generator.Star n; Generator.Chain n ] in
      List.for_all
        (fun s ->
          match Generator.generate_shape s with
          | Ok topo -> csr_consistent topo
          | Error _ -> true)
        shapes)

let test_generate_scale_caps () =
  let is_error = function Error _ -> true | Ok _ -> false in
  check "over the AS cap is an Error" true
    (is_error
       (Generator.generate_scale
          { Generator.scale_params with Generator.sc_stub = Topology.max_as_count }));
  check "negative counts are an Error" true
    (is_error
       (Generator.generate_scale
          { Generator.scale_params with Generator.sc_eyeball = -1 }));
  check "no Tier-1 is an Error" true
    (is_error
       (Generator.generate_scale
          { Generator.scale_params with Generator.sc_tier1 = 0 }))

let test_small_scale_topology () =
  match Generator.generate_scale Generator.small_scale_params with
  | Error e -> Alcotest.failf "small_scale_params: %s" e
  | Ok topo ->
      check "CSR arena consistent" true (csr_consistent topo);
      Alcotest.(check (list Alcotest.string))
        "structural invariants hold" [] (Invariants.check topo);
      (* Deterministic in the seed: a second build is identical. *)
      (match Generator.generate_scale Generator.small_scale_params with
      | Error e -> Alcotest.failf "second build failed: %s" e
      | Ok topo2 ->
          Alcotest.(check int)
            "deterministic link count" (Topology.link_count topo)
            (Topology.link_count topo2));
      (* And batched propagation over it matches sequential. *)
      let origins = pick_origins topo 3 8 in
      let configs = Array.map (fun origin -> Announce.default ~origin) origins in
      let batched = Propagate.run_batch topo configs in
      Array.iteri
        (fun i st ->
          check
            (Printf.sprintf "scale origin %d batched == solo" origins.(i))
            true
            (Propagate.equal st (Propagate.run topo configs.(i))))
        batched

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_batch_equals_sequential;
      prop_batch_through_cache_and_pool;
      prop_batch_provenance_through_cache;
      prop_random_shapes_never_raise;
    ]
  @ [
      Alcotest.test_case "degenerate shapes build valid CSR arenas" `Quick
        test_shapes_total;
      Alcotest.test_case "star at the 2^20 AS cap" `Slow test_star_at_cap;
      Alcotest.test_case "generate_scale rejects out-of-cap params" `Quick
        test_generate_scale_caps;
      Alcotest.test_case "small scale topology: invariants, CSR, batching"
        `Quick test_small_scale_topology;
    ]
