(* Decision provenance: the trace layer must (a) never change the
   routes themselves, (b) agree with the selected best route on every
   decided AS, (c) be byte-identical run-to-run, through the RIB
   cache, through reconvergence and for any domain count — the
   determinism contract EXPLAIN and the JSONL export rely on. *)

module Sm = Netsim_prng.Splitmix
module Asn = Netsim_topo.Asn
module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Announce = Netsim_bgp.Announce
module Route = Netsim_bgp.Route
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Provenance = Netsim_obs.Provenance
module Pool = Netsim_par.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- fixture unit tests ------------------------------------------------ *)

let fixture_state () =
  Propagate.run ~provenance:true (Fixture.topo ())
    (Announce.default ~origin:Fixture.cp)

(* Structural invariants every decided AS must satisfy, checked on the
   whole state: a decision exists iff the AS is reachable and not the
   origin; the decision mirrors [best]; the winner is counted among
   its class's candidates; Only_candidate iff exactly one arrival. *)
let check_consistent s =
  let n = Topology.as_count (Propagate.topology s) in
  let origin = Propagate.origin s in
  let ok = ref true in
  for x = 0 to n - 1 do
    match Propagate.decision s x with
    | None ->
        if x <> origin && Propagate.reachable s x then ok := false
    | Some d -> (
        if x = origin then ok := false;
        let total =
          d.Propagate.d_cand_cust + d.Propagate.d_cand_peer
          + d.Propagate.d_cand_prov
        in
        if total < 1 then ok := false;
        if (d.Propagate.d_rule = Provenance.Only_candidate) <> (total = 1) then
          ok := false;
        if (d.Propagate.d_runner = None) <> (total = 1) then ok := false;
        match Propagate.best s x with
        | None -> ok := false
        | Some (r : Route.t) ->
            if
              r.Route.klass <> d.Propagate.d_klass
              || r.Route.next_hop <> d.Propagate.d_next_hop
              || r.Route.via_link.Netsim_topo.Relation.id
                 <> d.Propagate.d_link_id
            then ok := false)
  done;
  !ok

let test_fixture_consistent () =
  let s = fixture_state () in
  check "has provenance" true (Propagate.has_provenance s);
  check "decisions consistent with best/reachable" true (check_consistent s)

let test_fixture_eyeball_chain () =
  (* EB hears CP directly over both peering sessions (links 7 and 8)
     and once more from its transit provider TR; peer beats provider,
     and the two equal-length peer routes tie down to the session id:
     the private Chicago link (7) wins, the public NY link (8) is the
     runner-up. *)
  let s = fixture_state () in
  match Propagate.decision s Fixture.eb with
  | None -> Alcotest.fail "EB should have a decision"
  | Some d ->
      check "winner class is peer" true (d.Propagate.d_klass = Route.Peer);
      check_int "winner next hop is CP" Fixture.cp d.Propagate.d_next_hop;
      check_int "winner link is the private session" Fixture.l_cp_eb_priv
        d.Propagate.d_link_id;
      check_int "no customer candidates" 0 d.Propagate.d_cand_cust;
      check_int "two peer candidates" 2 d.Propagate.d_cand_peer;
      check "tie broken on stable id" true
        (d.Propagate.d_rule = Provenance.Stable_id);
      (match d.Propagate.d_runner with
      | Some r ->
          check_int "runner-up is the public session" Fixture.l_cp_eb_pub
            r.Propagate.r_link_id;
          check "runner-up class is peer" true (r.Propagate.r_klass = Route.Peer)
      | None -> Alcotest.fail "EB should have a runner-up")

let test_fixture_stub_only_candidate () =
  (* ST's sole neighbor is its provider EB: exactly one arrival, no
     tie to break. *)
  let s = fixture_state () in
  match Propagate.decision s Fixture.st with
  | None -> Alcotest.fail "ST should have a decision"
  | Some d ->
      check "stub learns from provider" true
        (d.Propagate.d_klass = Route.Provider);
      check_int "one provider candidate" 1 d.Propagate.d_cand_prov;
      check "only-candidate rule" true
        (d.Propagate.d_rule = Provenance.Only_candidate);
      check "no runner-up" true (d.Propagate.d_runner = None)

let test_origin_has_no_decision () =
  let s = fixture_state () in
  check "origin decision is None" true (Propagate.decision s Fixture.cp = None)

let test_without_provenance_raises () =
  let s =
    Propagate.run ~provenance:false (Fixture.topo ())
      (Announce.default ~origin:Fixture.cp)
  in
  check "no provenance recorded" false (Propagate.has_provenance s);
  check "decision raises" true
    (match Propagate.decision s Fixture.eb with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_provenance_does_not_change_routes () =
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  check "routes identical with and without provenance" true
    (Propagate.equal
       (Propagate.run ~provenance:true topo config)
       (Propagate.run ~provenance:false topo config))

let test_reconverge_rebuilds_provenance () =
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  let s = Propagate.run ~provenance:true topo config in
  (* Fail the winning EB session: provenance after reconvergence must
     equal a full instrumented run on the failed topology — including
     at ASes whose routing entry did not change but whose candidate
     set did. *)
  let failed = Topology.remove_links topo [ Fixture.l_cp_eb_priv ] in
  let incr, _ =
    Propagate.reconverge s ~topo:failed
      (Propagate.Link_removed Fixture.l_cp_eb_priv)
  in
  let full = Propagate.run ~provenance:true failed config in
  check "routes equal" true (Propagate.equal incr full);
  check "provenance carried through reconverge" true
    (Propagate.has_provenance incr);
  check "provenance equals full run" true (Propagate.provenance_equal incr full)

(* ---- determinism properties (qcheck) ----------------------------------- *)

let random_topo seed =
  let params =
    {
      Generator.small_params with
      Generator.seed;
      n_tier1 = 2 + (seed mod 3);
      n_transit = 4 + (seed mod 5);
      n_eyeball = 8 + (seed mod 10);
      n_stub = 6 + (seed mod 8);
    }
  in
  Generator.generate params

let pick_origin topo seed =
  let eyeballs = Topology.by_klass topo Asn.Eyeball in
  List.nth eyeballs (seed mod List.length eyeballs)

let seed_gen = QCheck.int_range 0 500

let with_domains d f =
  let saved = Pool.domain_count () in
  Pool.set_domain_count d;
  Fun.protect ~finally:(fun () -> Pool.set_domain_count saved) f

let isolated_cache f =
  let saved = Rib_cache.enabled () in
  Rib_cache.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Rib_cache.set_enabled saved)
    (fun () -> Rib_cache.capture (Rib_cache.fresh_shard ()) f)

let prop_run_to_run_identical =
  QCheck.Test.make ~name:"provenance is identical run-to-run" ~count:30
    seed_gen (fun seed ->
      let topo = random_topo seed in
      let config = Announce.default ~origin:(pick_origin topo seed) in
      let a = Propagate.run ~provenance:true topo config in
      let b = Propagate.run ~provenance:true topo config in
      Propagate.equal a b && Propagate.provenance_equal a b)

let prop_consistent_on_random =
  QCheck.Test.make
    ~name:"decisions agree with best/reachable on random topologies" ~count:25
    seed_gen (fun seed ->
      let topo = random_topo seed in
      let config = Announce.default ~origin:(pick_origin topo seed) in
      check_consistent (Propagate.run ~provenance:true topo config))

let prop_cache_transparent =
  QCheck.Test.make
    ~name:"provenance through the RIB cache equals a direct run (hit upgrade)"
    ~count:20 seed_gen (fun seed ->
      let topo = random_topo seed in
      let config = Announce.default ~origin:(pick_origin topo seed) in
      let direct = Propagate.run ~provenance:true topo config in
      isolated_cache @@ fun () ->
      (* Prime the cache without provenance, then ask with: the hit
         must upgrade and still be bit-identical to the direct run. *)
      let plain = Rib_cache.run ~provenance:false topo config in
      let upgraded = Rib_cache.run ~provenance:true topo config in
      let again = Rib_cache.run ~provenance:true topo config in
      Propagate.equal plain direct
      && Propagate.has_provenance upgraded
      && Propagate.equal upgraded direct
      && Propagate.provenance_equal upgraded direct
      && Propagate.provenance_equal again direct)

let prop_reconverge_provenance_equals_full =
  QCheck.Test.make
    ~name:"reconverged provenance equals full instrumented run" ~count:20
    (QCheck.pair seed_gen (QCheck.int_range 0 10_000))
    (fun (seed, lseed) ->
      let topo = random_topo seed in
      let config = Announce.default ~origin:(pick_origin topo seed) in
      let state = Propagate.run ~provenance:true topo config in
      let l = lseed mod Topology.link_count topo in
      let failed = Topology.remove_links topo [ l ] in
      let full = Propagate.run ~provenance:true failed config in
      let incr, _ =
        Propagate.reconverge state ~topo:failed (Propagate.Link_removed l)
      in
      let restored, _ =
        Propagate.reconverge incr ~topo (Propagate.Link_added l)
      in
      Propagate.equal incr full
      && Propagate.provenance_equal incr full
      && Propagate.provenance_equal restored state)

let prop_domain_count_invariant =
  QCheck.Test.make
    ~name:"provenance identical for 1 and 4 domains (pooled fan-out)"
    ~count:10 seed_gen (fun seed ->
      let topo = random_topo seed in
      let origins =
        Array.of_list (Topology.by_klass topo Asn.Eyeball)
      in
      let fan d =
        with_domains d (fun () ->
            Pool.map
              (fun o ->
                Propagate.run ~provenance:true topo (Announce.default ~origin:o))
              origins)
      in
      let serial = fan 1 and pooled = fan 4 in
      Array.for_all2
        (fun a b -> Propagate.equal a b && Propagate.provenance_equal a b)
        serial pooled)

let suite =
  [
    Alcotest.test_case "fixture decisions consistent" `Quick
      test_fixture_consistent;
    Alcotest.test_case "fixture: EB peer tie-break chain" `Quick
      test_fixture_eyeball_chain;
    Alcotest.test_case "fixture: ST only-candidate" `Quick
      test_fixture_stub_only_candidate;
    Alcotest.test_case "origin has no decision" `Quick
      test_origin_has_no_decision;
    Alcotest.test_case "decision without provenance raises" `Quick
      test_without_provenance_raises;
    Alcotest.test_case "provenance leaves routes unchanged" `Quick
      test_provenance_does_not_change_routes;
    Alcotest.test_case "reconverge rebuilds provenance" `Quick
      test_reconverge_rebuilds_provenance;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_run_to_run_identical;
        prop_consistent_on_random;
        prop_cache_transparent;
        prop_reconverge_provenance_equals_full;
        prop_domain_count_invariant;
      ]
