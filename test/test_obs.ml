(* Tests for the observability substrate (Netsim_obs): counter /
   gauge / histogram arithmetic, span nesting and exclusive-time
   accounting, JSON emitter validity (round-trip checked with a tiny
   parser below), and a determinism proof that instrumentation does
   not perturb figure output. *)

module Metrics = Netsim_obs.Metrics
module Span = Netsim_obs.Span
module Report = Netsim_obs.Report
module Jsonx = Netsim_obs.Jsonx

let checkf = Alcotest.(check (float 1e-9))

(* Every test starts from a clean slate and leaves tracing off, so the
   global registry never leaks state into other suites. *)
let with_clean ?(enabled = true) f () =
  Report.reset ();
  Metrics.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Report.reset ())
    f

(* ---- counters / gauges ---- *)

let test_counter_disabled () =
  let c = Metrics.counter "t.disabled" in
  Metrics.incr c;
  Metrics.add c 10;
  Alcotest.(check int) "no-op when disabled" 0 (Metrics.counter_value c)

let test_counter_enabled () =
  let c = Metrics.counter "t.enabled" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Metrics.add c 5;
  Alcotest.(check int) "10 after incr+by+add" 10 (Metrics.counter_value c);
  Alcotest.(check bool) "interned by name" true
    (Metrics.counter_value (Metrics.counter "t.enabled") = 10);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

let test_gauge () =
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 3.5;
  checkf "set" 3.5 (Metrics.gauge_value g);
  Metrics.set g 1.25;
  checkf "overwrite" 1.25 (Metrics.gauge_value g)

(* ---- histograms ---- *)

let test_histogram_summary_exact () =
  let h = Metrics.histogram "t.hist" in
  List.iter (Metrics.observe h) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Metrics.histogram_count h);
  let s = Metrics.histogram_summary h in
  checkf "mean exact (summary, not buckets)" 2.5 (Netsim_stats.Summary.mean s);
  checkf "min" 1. (Netsim_stats.Summary.min s);
  checkf "max" 4. (Netsim_stats.Summary.max s);
  checkf "total" 10. (Netsim_stats.Summary.total s)

let test_histogram_quantile_bucketed () =
  let h = Metrics.histogram "t.hist.q" in
  (* Log buckets are ~1.58x wide; quantile estimates must land within
     one bucket of the true value. *)
  for _ = 1 to 100 do
    Metrics.observe h 10.
  done;
  let p50 = Metrics.histogram_quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %g within a bucket of 10" p50)
    true
    (p50 > 10. /. 1.6 && p50 < 10. *. 1.6)

let test_histogram_quantiles_monotone () =
  let h = Metrics.histogram "t.hist.m" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  let p50 = Metrics.histogram_quantile h 0.5 in
  let p90 = Metrics.histogram_quantile h 0.9 in
  let p99 = Metrics.histogram_quantile h 0.99 in
  Alcotest.(check bool) "p50 <= p90 <= p99" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "p50 near 500" true (p50 > 500. /. 1.6 && p50 < 800.);
  Alcotest.(check bool) "p99 near 990" true (p99 > 990. /. 1.6 && p99 < 1585.)

let test_histogram_extremes () =
  let h = Metrics.histogram "t.hist.e" in
  Metrics.observe h 0.;
  Metrics.observe h (-5.);
  Metrics.observe h 1e12;
  Alcotest.(check int) "under/overflow still counted" 3
    (Metrics.histogram_count h);
  let p = Metrics.histogram_quantile h 0.99 in
  Alcotest.(check bool) "overflow clamps to top bucket" true (p <= 1e7 +. 1.)

let test_histogram_empty () =
  let h = Metrics.histogram "t.hist.empty" in
  Alcotest.(check bool) "quantile of empty is nan" true
    (Float.is_nan (Metrics.histogram_quantile h 0.5))

(* ---- spans ---- *)

let spin ms =
  let t0 = Unix.gettimeofday () in
  while (Unix.gettimeofday () -. t0) *. 1000. < ms do
    ()
  done

let test_span_disabled_transparent () =
  Alcotest.(check int) "returns f's value" 41
    (Span.with_ ~name:"t.off" (fun () -> 41));
  Alcotest.(check (list string)) "no tree recorded" [] (Span.span_names ())

let test_span_nesting () =
  let v =
    Span.with_ ~name:"outer" (fun () ->
        Span.with_ ~name:"inner" (fun () -> spin 2.);
        Span.with_ ~name:"inner" (fun () -> spin 2.);
        17)
  in
  Alcotest.(check int) "value passed through" 17 v;
  match Span.tree () with
  | [ outer ] ->
      Alcotest.(check string) "outer name" "outer" outer.Span.i_name;
      Alcotest.(check int) "outer calls" 1 outer.Span.i_calls;
      (match outer.Span.i_children with
      | [ inner ] ->
          Alcotest.(check string) "inner name" "inner" inner.Span.i_name;
          Alcotest.(check int) "same-name spans merge" 2 inner.Span.i_calls;
          Alcotest.(check bool) "inner total >= 4ms" true
            (inner.Span.i_total_ms >= 4.);
          Alcotest.(check bool) "outer includes inner" true
            (outer.Span.i_total_ms >= inner.Span.i_total_ms);
          (* Exclusive time: outer did almost nothing itself. *)
          Alcotest.(check bool) "outer self = total - child" true
            (Float.abs
               (outer.Span.i_self_ms
               -. (outer.Span.i_total_ms -. inner.Span.i_total_ms))
            < 1e-6)
      | l ->
          Alcotest.failf "expected one merged child, got %d" (List.length l))
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_span_counter_deltas () =
  let c = Metrics.counter "t.span.work" in
  Span.with_ ~name:"outer" (fun () ->
      Metrics.incr ~by:2 c;
      Span.with_ ~name:"inner" (fun () -> Metrics.incr ~by:5 c));
  match Span.tree () with
  | [ outer ] ->
      Alcotest.(check (list (pair string int)))
        "outer sees inclusive delta"
        [ ("t.span.work", 7) ]
        outer.Span.i_counters;
      let inner = List.hd outer.Span.i_children in
      Alcotest.(check (list (pair string int)))
        "inner sees only its own"
        [ ("t.span.work", 5) ]
        inner.Span.i_counters
  | _ -> Alcotest.fail "expected one root"

let test_span_exception_safe () =
  (try Span.with_ ~name:"boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Span.with_ ~name:"after" (fun () -> ());
  Alcotest.(check (list string))
    "exception closed the span; next span is a sibling root"
    [ "boom"; "after" ] (Span.span_names ())

(* JSON round-tripping uses the tiny parser in Test_util. *)
let parse_json = Test_util.parse_json

let test_json_roundtrip_structural () =
  let doc =
    Jsonx.Obj
      [
        ("plain", Jsonx.Int 42);
        ("neg", Jsonx.Int (-7));
        ("float", Jsonx.Float 3.125);
        ("tricky\"key\n", Jsonx.String "va\\lue\twith \"quotes\"");
        ("control", Jsonx.String "\001\031");
        ("arr", Jsonx.Arr [ Jsonx.Null; Jsonx.Bool true; Jsonx.Bool false ]);
        ("empty_arr", Jsonx.Arr []);
        ("empty_obj", Jsonx.Obj []);
      ]
  in
  let emitted = Jsonx.to_string doc in
  let parsed = parse_json emitted in
  (* Control chars come back as \uXXXX placeholders from the tiny
     parser only if >= 0x80; below 0x80 they round-trip exactly. *)
  Alcotest.(check string) "round-trips structurally" emitted
    (Jsonx.to_string parsed)

let test_json_nan_is_null () =
  Alcotest.(check string) "nan emits null" "null" (Jsonx.to_string (Jsonx.Float nan));
  Alcotest.(check string) "inf emits null" "null"
    (Jsonx.to_string (Jsonx.Float infinity))

let test_report_json_parses () =
  let c = Metrics.counter "t.report.c" in
  let h = Metrics.histogram "t.report.h" in
  Metrics.incr ~by:3 c;
  Span.with_ ~name:"t.report.span" (fun () -> Metrics.observe h 12.5);
  let doc = Report.to_json () in
  let parsed = parse_json (Jsonx.to_string doc) in
  let metrics =
    match Jsonx.member "metrics" parsed with
    | Some m -> m
    | None -> Alcotest.fail "no metrics key"
  in
  (match Jsonx.member "counters" metrics with
  | Some (Jsonx.Obj fields) ->
      Alcotest.(check bool) "counter present" true
        (List.assoc_opt "t.report.c" fields = Some (Jsonx.Int 3))
  | _ -> Alcotest.fail "no counters object");
  (match Jsonx.member "histograms" metrics with
  | Some (Jsonx.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "no histogram entries");
  match Jsonx.member "trace" parsed with
  | Some (Jsonx.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "no trace entries"

(* ---- determinism: tracing must not perturb simulation output ---- *)

let test_tracing_does_not_perturb_fig1 () =
  let sizes = Beatbgp.Scenario.test_sizes in
  let run () =
    let fb = Beatbgp.Scenario.facebook ~sizes () in
    let r = Beatbgp.Fig1_pop_egress.run fb in
    Beatbgp.Figure.to_csv r.Beatbgp.Fig1_pop_egress.figure
  in
  Metrics.set_enabled false;
  let untraced = run () in
  Report.reset ();
  Metrics.set_enabled true;
  let traced = run () in
  Metrics.set_enabled false;
  Alcotest.(check bool) "tracing recorded spans" true (Span.span_names () <> []);
  Alcotest.(check string) "identical figure data with tracing on" untraced
    traced

let suite =
  [
    Alcotest.test_case "counter disabled"
      `Quick (with_clean ~enabled:false test_counter_disabled);
    Alcotest.test_case "counter enabled" `Quick (with_clean test_counter_enabled);
    Alcotest.test_case "gauge" `Quick (with_clean test_gauge);
    Alcotest.test_case "histogram summary exact" `Quick
      (with_clean test_histogram_summary_exact);
    Alcotest.test_case "histogram quantile bucketed" `Quick
      (with_clean test_histogram_quantile_bucketed);
    Alcotest.test_case "histogram quantiles monotone" `Quick
      (with_clean test_histogram_quantiles_monotone);
    Alcotest.test_case "histogram extremes" `Quick
      (with_clean test_histogram_extremes);
    Alcotest.test_case "histogram empty" `Quick
      (with_clean test_histogram_empty);
    Alcotest.test_case "span disabled transparent" `Quick
      (with_clean ~enabled:false test_span_disabled_transparent);
    Alcotest.test_case "span nesting + exclusive time" `Quick
      (with_clean test_span_nesting);
    Alcotest.test_case "span counter deltas" `Quick
      (with_clean test_span_counter_deltas);
    Alcotest.test_case "span exception safety" `Quick
      (with_clean test_span_exception_safe);
    Alcotest.test_case "json round-trip" `Quick
      (with_clean test_json_roundtrip_structural);
    Alcotest.test_case "json nan -> null" `Quick
      (with_clean test_json_nan_is_null);
    Alcotest.test_case "report json parses" `Quick
      (with_clean test_report_json_parses);
    Alcotest.test_case "tracing does not perturb fig1" `Slow
      (with_clean test_tracing_does_not_perturb_fig1);
  ]
