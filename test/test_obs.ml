(* Tests for the observability substrate (Netsim_obs): counter /
   gauge / histogram arithmetic, span nesting and exclusive-time
   accounting, JSON emitter validity (round-trip checked with a tiny
   parser below), and a determinism proof that instrumentation does
   not perturb figure output. *)

module Metrics = Netsim_obs.Metrics
module Span = Netsim_obs.Span
module Report = Netsim_obs.Report
module Jsonx = Netsim_obs.Jsonx
module Recorder = Netsim_obs.Recorder
module Export_prom = Netsim_obs.Export_prom
module Export_trace = Netsim_obs.Export_trace

let checkf = Alcotest.(check (float 1e-9))

(* Every test starts from a clean slate and leaves tracing off, so the
   global registry never leaks state into other suites. *)
let with_clean ?(enabled = true) f () =
  Report.reset ();
  Metrics.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Report.reset ())
    f

(* ---- counters / gauges ---- *)

let test_counter_disabled () =
  let c = Metrics.counter "t.disabled" in
  Metrics.incr c;
  Metrics.add c 10;
  Alcotest.(check int) "no-op when disabled" 0 (Metrics.counter_value c)

let test_counter_enabled () =
  let c = Metrics.counter "t.enabled" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Metrics.add c 5;
  Alcotest.(check int) "10 after incr+by+add" 10 (Metrics.counter_value c);
  Alcotest.(check bool) "interned by name" true
    (Metrics.counter_value (Metrics.counter "t.enabled") = 10);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

let test_gauge () =
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 3.5;
  checkf "set" 3.5 (Metrics.gauge_value g);
  Metrics.set g 1.25;
  checkf "overwrite" 1.25 (Metrics.gauge_value g)

(* ---- histograms ---- *)

let test_histogram_summary_exact () =
  let h = Metrics.histogram "t.hist" in
  List.iter (Metrics.observe h) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Metrics.histogram_count h);
  let s = Metrics.histogram_summary h in
  checkf "mean exact (summary, not buckets)" 2.5 (Netsim_stats.Summary.mean s);
  checkf "min" 1. (Netsim_stats.Summary.min s);
  checkf "max" 4. (Netsim_stats.Summary.max s);
  checkf "total" 10. (Netsim_stats.Summary.total s)

let test_histogram_quantile_bucketed () =
  let h = Metrics.histogram "t.hist.q" in
  (* Log buckets are ~1.58x wide; quantile estimates must land within
     one bucket of the true value. *)
  for _ = 1 to 100 do
    Metrics.observe h 10.
  done;
  let p50 = Metrics.histogram_quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %g within a bucket of 10" p50)
    true
    (p50 > 10. /. 1.6 && p50 < 10. *. 1.6)

let test_histogram_quantiles_monotone () =
  let h = Metrics.histogram "t.hist.m" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  let p50 = Metrics.histogram_quantile h 0.5 in
  let p90 = Metrics.histogram_quantile h 0.9 in
  let p99 = Metrics.histogram_quantile h 0.99 in
  Alcotest.(check bool) "p50 <= p90 <= p99" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "p50 near 500" true (p50 > 500. /. 1.6 && p50 < 800.);
  Alcotest.(check bool) "p99 near 990" true (p99 > 990. /. 1.6 && p99 < 1585.)

let test_histogram_extremes () =
  let h = Metrics.histogram "t.hist.e" in
  Metrics.observe h 0.;
  Metrics.observe h (-5.);
  Metrics.observe h 1e12;
  Alcotest.(check int) "under/overflow still counted" 3
    (Metrics.histogram_count h);
  let p = Metrics.histogram_quantile h 0.99 in
  Alcotest.(check bool) "overflow clamps to top bucket" true (p <= 1e7 +. 1.)

let test_histogram_empty () =
  let h = Metrics.histogram "t.hist.empty" in
  Alcotest.(check bool) "quantile of empty is nan" true
    (Float.is_nan (Metrics.histogram_quantile h 0.5))

(* ---- spans ---- *)

let spin ms =
  let t0 = Unix.gettimeofday () in
  while (Unix.gettimeofday () -. t0) *. 1000. < ms do
    ()
  done

let test_span_disabled_transparent () =
  Alcotest.(check int) "returns f's value" 41
    (Span.with_ ~name:"t.off" (fun () -> 41));
  Alcotest.(check (list string)) "no tree recorded" [] (Span.span_names ())

let test_span_nesting () =
  let v =
    Span.with_ ~name:"outer" (fun () ->
        Span.with_ ~name:"inner" (fun () -> spin 2.);
        Span.with_ ~name:"inner" (fun () -> spin 2.);
        17)
  in
  Alcotest.(check int) "value passed through" 17 v;
  match Span.tree () with
  | [ outer ] ->
      Alcotest.(check string) "outer name" "outer" outer.Span.i_name;
      Alcotest.(check int) "outer calls" 1 outer.Span.i_calls;
      (match outer.Span.i_children with
      | [ inner ] ->
          Alcotest.(check string) "inner name" "inner" inner.Span.i_name;
          Alcotest.(check int) "same-name spans merge" 2 inner.Span.i_calls;
          Alcotest.(check bool) "inner total >= 4ms" true
            (inner.Span.i_total_ms >= 4.);
          Alcotest.(check bool) "outer includes inner" true
            (outer.Span.i_total_ms >= inner.Span.i_total_ms);
          (* Exclusive time: outer did almost nothing itself. *)
          Alcotest.(check bool) "outer self = total - child" true
            (Float.abs
               (outer.Span.i_self_ms
               -. (outer.Span.i_total_ms -. inner.Span.i_total_ms))
            < 1e-6)
      | l ->
          Alcotest.failf "expected one merged child, got %d" (List.length l))
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_span_counter_deltas () =
  let c = Metrics.counter "t.span.work" in
  Span.with_ ~name:"outer" (fun () ->
      Metrics.incr ~by:2 c;
      Span.with_ ~name:"inner" (fun () -> Metrics.incr ~by:5 c));
  match Span.tree () with
  | [ outer ] ->
      Alcotest.(check (list (pair string int)))
        "outer sees inclusive delta"
        [ ("t.span.work", 7) ]
        outer.Span.i_counters;
      let inner = List.hd outer.Span.i_children in
      Alcotest.(check (list (pair string int)))
        "inner sees only its own"
        [ ("t.span.work", 5) ]
        inner.Span.i_counters
  | _ -> Alcotest.fail "expected one root"

let test_span_exception_safe () =
  (try Span.with_ ~name:"boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Span.with_ ~name:"after" (fun () -> ());
  Alcotest.(check (list string))
    "exception closed the span; next span is a sibling root"
    [ "boom"; "after" ] (Span.span_names ())

(* JSON round-tripping uses the tiny parser in Test_util. *)
let parse_json = Test_util.parse_json

let test_json_roundtrip_structural () =
  let doc =
    Jsonx.Obj
      [
        ("plain", Jsonx.Int 42);
        ("neg", Jsonx.Int (-7));
        ("float", Jsonx.Float 3.125);
        ("tricky\"key\n", Jsonx.String "va\\lue\twith \"quotes\"");
        ("control", Jsonx.String "\001\031");
        ("arr", Jsonx.Arr [ Jsonx.Null; Jsonx.Bool true; Jsonx.Bool false ]);
        ("empty_arr", Jsonx.Arr []);
        ("empty_obj", Jsonx.Obj []);
      ]
  in
  let emitted = Jsonx.to_string doc in
  let parsed = parse_json emitted in
  (* Control chars come back as \uXXXX placeholders from the tiny
     parser only if >= 0x80; below 0x80 they round-trip exactly. *)
  Alcotest.(check string) "round-trips structurally" emitted
    (Jsonx.to_string parsed)

let test_json_nan_is_null () =
  Alcotest.(check string) "nan emits null" "null" (Jsonx.to_string (Jsonx.Float nan));
  Alcotest.(check string) "inf emits null" "null"
    (Jsonx.to_string (Jsonx.Float infinity))

let test_report_json_parses () =
  let c = Metrics.counter "t.report.c" in
  let h = Metrics.histogram "t.report.h" in
  Metrics.incr ~by:3 c;
  Span.with_ ~name:"t.report.span" (fun () -> Metrics.observe h 12.5);
  let doc = Report.to_json () in
  let parsed = parse_json (Jsonx.to_string doc) in
  let metrics =
    match Jsonx.member "metrics" parsed with
    | Some m -> m
    | None -> Alcotest.fail "no metrics key"
  in
  (match Jsonx.member "counters" metrics with
  | Some (Jsonx.Obj fields) ->
      Alcotest.(check bool) "counter present" true
        (List.assoc_opt "t.report.c" fields = Some (Jsonx.Int 3))
  | _ -> Alcotest.fail "no counters object");
  (match Jsonx.member "histograms" metrics with
  | Some (Jsonx.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "no histogram entries");
  match Jsonx.member "trace" parsed with
  | Some (Jsonx.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "no trace entries"

(* ---- Jsonx string escaping ---- *)

let test_json_escape_control_chars () =
  let s = String.init 32 Char.chr in
  let emitted = Jsonx.to_string (Jsonx.String s) in
  (* Every byte below 0x20 must be escaped — no raw control chars in
     the output. *)
  String.iter
    (fun c ->
      if Char.code c < 0x20 then
        Alcotest.failf "raw control char %d leaked into %S" (Char.code c)
          emitted)
    emitted;
  match parse_json emitted with
  | Jsonx.String s' -> Alcotest.(check string) "round-trips" s s'
  | _ -> Alcotest.fail "expected a string"

let test_json_escape_quotes_backslash () =
  let s = "a\"b\\c/d\ne\tf" in
  match parse_json (Jsonx.to_string (Jsonx.String s)) with
  | Jsonx.String s' -> Alcotest.(check string) "round-trips" s s'
  | _ -> Alcotest.fail "expected a string"

let test_json_escape_non_ascii () =
  (* Bytes >= 0x80 (UTF-8 payload) pass through the emitter raw, per
     RFC 8259 (JSON text is Unicode; only control chars need
     escaping). *)
  let s = "caf\xc3\xa9 \xe2\x82\xac" in
  let emitted = Jsonx.to_string (Jsonx.String s) in
  Alcotest.(check bool) "high bytes not escaped" true
    (Test_util.contains emitted "caf\xc3\xa9");
  match parse_json emitted with
  | Jsonx.String s' -> Alcotest.(check string) "round-trips" s s'
  | _ -> Alcotest.fail "expected a string"

let test_json_unicode_escape_parses () =
  (* The tiny parser maps \uXXXX below 0x80 back to the raw char, so
     emitter escapes of ASCII control chars round-trip exactly. *)
  (match parse_json "\"A\\u000a\"" with
  | Jsonx.String s -> Alcotest.(check string) "A + newline" "A\n" s
  | _ -> Alcotest.fail "expected a string");
  match parse_json "\"\\u20ac\"" with
  | Jsonx.String s ->
      Alcotest.(check string) "non-ASCII escape kept as placeholder"
        "\\u20ac" s
  | _ -> Alcotest.fail "expected a string"

(* ---- Report.write_text error paths ---- *)

let test_write_text_missing_dir () =
  match Report.write_text "/nonexistent-dir-xyz/out.json" "{}" with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the directory: %s" msg)
        true
        (Test_util.contains msg "directory"
        && Test_util.contains msg "/nonexistent-dir-xyz")

let test_write_text_roundtrip () =
  let path = Filename.temp_file "netsim_obs" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Report.write_text path "hello";
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "content written" "hello" s)

(* ---- Prometheus exporter ---- *)

(* Structural validation of the text-exposition output: HELP/TYPE
   precede every metric, histogram buckets are cumulative (monotone),
   and the +Inf bucket equals _count. *)
let test_prom_format_valid () =
  Metrics.incr ~by:7 (Metrics.counter "t.prom.count");
  Metrics.set (Metrics.gauge "t.prom.gauge") 2.5;
  let h = Metrics.histogram "t.prom.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.; 10.; 100.; 1e9 ];
  let text = Export_prom.to_string () in
  let lines = String.split_on_char '\n' text in
  (* Every non-comment line's metric family must have been declared by
     a preceding TYPE line. *)
  let declared = Hashtbl.create 16 in
  let strip_family name =
    List.fold_left
      (fun n suffix ->
        if Filename.check_suffix n suffix then Filename.chop_suffix n suffix
        else n)
      name
      [ "_bucket"; "_sum"; "_count" ]
  in
  List.iter
    (fun line ->
      if line <> "" then
        if String.length line > 6 && String.sub line 0 6 = "# TYPE" then begin
          match String.split_on_char ' ' line with
          | _ :: _ :: name :: _ -> Hashtbl.replace declared name ()
          | _ -> Alcotest.failf "malformed TYPE line %S" line
        end
        else if line.[0] <> '#' then begin
          let name =
            match String.index_opt line '{' with
            | Some i -> String.sub line 0 i
            | None -> (
                match String.index_opt line ' ' with
                | Some i -> String.sub line 0 i
                | None -> line)
          in
          if not (Hashtbl.mem declared (strip_family name)) then
            Alcotest.failf "sample %S lacks a TYPE declaration" name
        end)
    lines;
  (* Bucket monotonicity + consistency for t.prom.hist. *)
  let prefix = Export_prom.sanitize "t.prom.hist" in
  let bucket_counts =
    List.filter_map
      (fun line ->
        if
          String.length line > String.length prefix
          && String.sub line 0 (String.length prefix) = prefix
          && Test_util.contains line "_bucket{"
        then
          match String.rindex_opt line ' ' with
          | Some i ->
              int_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
          | None -> None
        else None)
      lines
  in
  Alcotest.(check bool) "has buckets" true (List.length bucket_counts >= 2);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "buckets cumulative (monotone)" true
    (monotone bucket_counts);
  let last_bucket = List.nth bucket_counts (List.length bucket_counts - 1) in
  Alcotest.(check int) "+Inf bucket equals _count" 5 last_bucket;
  Alcotest.(check bool) "_count line present" true
    (Test_util.contains text (prefix ^ "_count 5"));
  Alcotest.(check bool) "+Inf bucket line present" true
    (Test_util.contains text (prefix ^ "_bucket{le=\"+Inf\"} 5"))

let test_prom_empty_histogram () =
  (* A histogram that was registered but never observed must still
     render the full parse-valid triple — the +Inf bucket, _sum and
     _count, all zero.  A scrape that hits the daemon before the first
     observation would otherwise fail exposition parsing. *)
  let _ = Metrics.histogram "t.prom.empty" in
  let text = Export_prom.to_string () in
  let prefix = Export_prom.sanitize "t.prom.empty" in
  Alcotest.(check bool) "+Inf bucket at zero" true
    (Test_util.contains text (prefix ^ "_bucket{le=\"+Inf\"} 0"));
  Alcotest.(check bool) "_sum at zero" true
    (Test_util.contains text (prefix ^ "_sum 0"));
  Alcotest.(check bool) "_count at zero" true
    (Test_util.contains text (prefix ^ "_count 0"));
  (* And the cumulative invariant holds: no bucket line of this family
     reports a non-zero count. *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if
           String.length line > String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
           && Test_util.contains line "_bucket{"
         then
           match String.rindex_opt line ' ' with
           | Some i ->
               Alcotest.(check string)
                 ("zero count in " ^ line)
                 "0"
                 (String.sub line (i + 1) (String.length line - i - 1))
           | None -> Alcotest.failf "malformed bucket line %S" line)

let test_prom_sanitize () =
  Alcotest.(check string) "dots to underscores" "netsim_a_b_c"
    (Export_prom.sanitize "a.b-c");
  Alcotest.(check string) "leading digit prefixed" "netsim__9lives"
    (Export_prom.sanitize "9lives")

(* ---- Perfetto exporter ---- *)

let test_perfetto_nesting () =
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner" (fun () -> spin 2.);
      Span.with_ ~name:"inner2" (fun () -> spin 1.));
  let doc = parse_json (Export_trace.to_string ()) in
  let events =
    match Jsonx.member "traceEvents" doc with
    | Some (Jsonx.Arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let span_events =
    List.filter
      (fun e -> Jsonx.member "ph" e = Some (Jsonx.String "X"))
      events
  in
  Alcotest.(check int) "three X events" 3 (List.length span_events);
  let find name =
    match
      List.find_opt
        (fun e -> Jsonx.member "name" e = Some (Jsonx.String name))
        span_events
    with
    | Some e -> e
    | None -> Alcotest.failf "no event %s" name
  in
  let ts e =
    match Jsonx.member "ts" e with
    | Some (Jsonx.Float f) -> f
    | Some (Jsonx.Int i) -> float_of_int i
    | _ -> Alcotest.fail "no ts"
  in
  let dur e =
    match Jsonx.member "dur" e with
    | Some (Jsonx.Float f) -> f
    | Some (Jsonx.Int i) -> float_of_int i
    | _ -> Alcotest.fail "no dur"
  in
  let outer = find "outer" and inner = find "inner" and inner2 = find "inner2" in
  Alcotest.(check bool) "inner starts at/after outer" true
    (ts inner >= ts outer);
  Alcotest.(check bool) "inner ends within outer" true
    (ts inner +. dur inner <= ts outer +. dur outer +. 1e-6);
  Alcotest.(check bool) "inner2 starts after inner ends" true
    (ts inner2 >= ts inner +. dur inner -. 1e-6);
  Alcotest.(check bool) "inner2 ends within outer" true
    (ts inner2 +. dur inner2 <= ts outer +. dur outer +. 1e-6)

(* ---- flight recorder ---- *)

let with_recorder f () =
  Report.reset ();
  Recorder.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Recorder.set_enabled false;
      Report.reset ())
    f

let test_recorder_disabled_zero_cost () =
  Recorder.set_enabled false;
  Recorder.record ~kind:"t.ev" [ Recorder.I ("x", 1) ];
  Alcotest.(check int) "nothing recorded when disabled" 0 (Recorder.size ())

let test_recorder_seq_and_jsonl () =
  Recorder.record ~kind:"t.a" [ Recorder.I ("x", 1) ];
  Recorder.record ~kind:"t.b"
    [ Recorder.F ("y", 2.5); Recorder.S ("s", "hi") ];
  Alcotest.(check int) "two events" 2 (Recorder.size ());
  Alcotest.(check int) "no drops" 0 (Recorder.dropped ());
  let lines =
    String.split_on_char '\n' (String.trim (Recorder.to_jsonl ()))
  in
  Alcotest.(check int) "header + 2 events" 3 (List.length lines);
  (match parse_json (List.nth lines 0) with
  | Jsonx.Obj fields ->
      Alcotest.(check bool) "schema header" true
        (List.assoc_opt "schema" fields
        = Some (Jsonx.String "beatbgp.events/1"))
  | _ -> Alcotest.fail "bad header");
  match (parse_json (List.nth lines 1), parse_json (List.nth lines 2)) with
  | Jsonx.Obj a, Jsonx.Obj b ->
      Alcotest.(check bool) "seq 0 then 1" true
        (List.assoc_opt "seq" a = Some (Jsonx.Int 0)
        && List.assoc_opt "seq" b = Some (Jsonx.Int 1));
      Alcotest.(check bool) "fields survive" true
        (List.assoc_opt "s" b = Some (Jsonx.String "hi"))
  | _ -> Alcotest.fail "bad event lines"

let test_recorder_ring_drops () =
  let saved = Recorder.capacity () in
  Fun.protect
    ~finally:(fun () -> Recorder.set_capacity saved)
    (fun () ->
      Recorder.set_capacity 4;
      for i = 0 to 9 do
        Recorder.record ~kind:"t.ring" [ Recorder.I ("i", i) ]
      done;
      Alcotest.(check int) "ring holds capacity" 4 (Recorder.size ());
      Alcotest.(check int) "dropped the rest" 6 (Recorder.dropped ());
      let jsonl = Recorder.to_jsonl () in
      Alcotest.(check bool) "oldest surviving seq is 6" true
        (Test_util.contains jsonl "{\"seq\":6,");
      Alcotest.(check bool) "newest seq is 9" true
        (Test_util.contains jsonl "{\"seq\":9,");
      Alcotest.(check bool) "seq 5 was dropped" false
        (Test_util.contains jsonl "{\"seq\":5,"))

let test_recorder_capture_absorb () =
  Recorder.record ~kind:"t.before" [];
  let (), cap =
    Recorder.capture (fun () ->
        Recorder.record ~kind:"t.inside" [ Recorder.I ("i", 1) ];
        Recorder.record ~kind:"t.inside" [ Recorder.I ("i", 2) ])
  in
  Alcotest.(check int) "captured events not yet in ring" 1 (Recorder.size ());
  Recorder.absorb cap;
  Recorder.record ~kind:"t.after" [];
  let jsonl = Recorder.to_jsonl () in
  Alcotest.(check int) "all four in ring" 4 (Recorder.size ());
  (* Submission-order replay: before, inside(1), inside(2), after. *)
  let idx s =
    let rec go i =
      if i + String.length s > String.length jsonl then -1
      else if String.sub jsonl i (String.length s) = s then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "ordered replay" true
    (idx "t.before" < idx "\"i\":1"
    && idx "\"i\":1" < idx "\"i\":2"
    && idx "\"i\":2" < idx "t.after")

let test_recorder_pool_domain_invariant () =
  let run d =
    let saved = Netsim_par.Pool.domain_count () in
    Netsim_par.Pool.set_domain_count d;
    Fun.protect
      ~finally:(fun () -> Netsim_par.Pool.set_domain_count saved)
      (fun () ->
        Recorder.reset ();
        ignore
          (Netsim_par.Pool.mapi
             (fun i _ ->
               Recorder.record ~kind:"t.pool" [ Recorder.I ("task", i) ];
               if i mod 2 = 0 then
                 Recorder.record ~kind:"t.pool.even" [ Recorder.I ("task", i) ];
               i)
             (Array.make 16 ()));
        Recorder.to_jsonl ())
  in
  Alcotest.(check string) "event log byte-identical (1 vs 4 domains)"
    (run 1) (run 4)

(* ---- determinism: tracing must not perturb simulation output ---- *)

let test_tracing_does_not_perturb_fig1 () =
  let sizes = Beatbgp.Scenario.test_sizes in
  let run () =
    let fb = Beatbgp.Scenario.facebook ~sizes () in
    let r = Beatbgp.Fig1_pop_egress.run fb in
    Beatbgp.Figure.to_csv r.Beatbgp.Fig1_pop_egress.figure
  in
  Metrics.set_enabled false;
  let untraced = run () in
  Report.reset ();
  Metrics.set_enabled true;
  let traced = run () in
  Metrics.set_enabled false;
  Alcotest.(check bool) "tracing recorded spans" true (Span.span_names () <> []);
  Alcotest.(check string) "identical figure data with tracing on" untraced
    traced

let suite =
  [
    Alcotest.test_case "counter disabled"
      `Quick (with_clean ~enabled:false test_counter_disabled);
    Alcotest.test_case "counter enabled" `Quick (with_clean test_counter_enabled);
    Alcotest.test_case "gauge" `Quick (with_clean test_gauge);
    Alcotest.test_case "histogram summary exact" `Quick
      (with_clean test_histogram_summary_exact);
    Alcotest.test_case "histogram quantile bucketed" `Quick
      (with_clean test_histogram_quantile_bucketed);
    Alcotest.test_case "histogram quantiles monotone" `Quick
      (with_clean test_histogram_quantiles_monotone);
    Alcotest.test_case "histogram extremes" `Quick
      (with_clean test_histogram_extremes);
    Alcotest.test_case "histogram empty" `Quick
      (with_clean test_histogram_empty);
    Alcotest.test_case "span disabled transparent" `Quick
      (with_clean ~enabled:false test_span_disabled_transparent);
    Alcotest.test_case "span nesting + exclusive time" `Quick
      (with_clean test_span_nesting);
    Alcotest.test_case "span counter deltas" `Quick
      (with_clean test_span_counter_deltas);
    Alcotest.test_case "span exception safety" `Quick
      (with_clean test_span_exception_safe);
    Alcotest.test_case "json round-trip" `Quick
      (with_clean test_json_roundtrip_structural);
    Alcotest.test_case "json nan -> null" `Quick
      (with_clean test_json_nan_is_null);
    Alcotest.test_case "report json parses" `Quick
      (with_clean test_report_json_parses);
    Alcotest.test_case "json escape: control chars" `Quick
      (with_clean test_json_escape_control_chars);
    Alcotest.test_case "json escape: quotes and backslash" `Quick
      (with_clean test_json_escape_quotes_backslash);
    Alcotest.test_case "json escape: non-ascii bytes" `Quick
      (with_clean test_json_escape_non_ascii);
    Alcotest.test_case "json \\u escapes parse" `Quick
      (with_clean test_json_unicode_escape_parses);
    Alcotest.test_case "write_text: missing directory fails clearly" `Quick
      (with_clean test_write_text_missing_dir);
    Alcotest.test_case "write_text: roundtrip" `Quick
      (with_clean test_write_text_roundtrip);
    Alcotest.test_case "prometheus format valid" `Quick
      (with_clean test_prom_format_valid);
    Alcotest.test_case "prometheus empty histogram stays parse-valid" `Quick
      (with_clean test_prom_empty_histogram);
    Alcotest.test_case "prometheus name sanitization" `Quick
      (with_clean test_prom_sanitize);
    Alcotest.test_case "perfetto spans nest" `Quick
      (with_clean test_perfetto_nesting);
    Alcotest.test_case "recorder disabled is a no-op" `Quick
      (with_recorder test_recorder_disabled_zero_cost);
    Alcotest.test_case "recorder seq numbers + jsonl" `Quick
      (with_recorder test_recorder_seq_and_jsonl);
    Alcotest.test_case "recorder ring drops oldest" `Quick
      (with_recorder test_recorder_ring_drops);
    Alcotest.test_case "recorder capture/absorb ordering" `Quick
      (with_recorder test_recorder_capture_absorb);
    Alcotest.test_case "recorder pool domain-invariant" `Quick
      (with_recorder test_recorder_pool_domain_invariant);
    Alcotest.test_case "tracing does not perturb fig1" `Slow
      (with_clean test_tracing_does_not_perturb_fig1);
  ]
