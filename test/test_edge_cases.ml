(* Edge cases across modules that the main suites don't exercise:
   degenerate inputs, single elements, boundary values. *)

module Sm = Netsim_prng.Splitmix
module Quantile = Netsim_stats.Quantile
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Ascii_plot = Netsim_stats.Ascii_plot
module Histogram = Netsim_stats.Histogram
module Window = Netsim_traffic.Window
module Coord = Netsim_geo.Coord
module World = Netsim_geo.World
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
open Fixture

(* ---- stats edges ---- *)

let test_cdf_single_value () =
  let c = Cdf.of_samples [| 5. |] in
  Alcotest.(check (float 1e-9)) "median" 5. (Cdf.median c);
  Alcotest.(check (float 1e-9)) "below" 1. (Cdf.fraction_below c 5.);
  Alcotest.(check (float 1e-9)) "above" 1. (Cdf.fraction_above c 4.9)

let test_cdf_all_equal () =
  let c = Cdf.of_samples (Array.make 100 7.) in
  Alcotest.(check (float 1e-9)) "q05 = q95" (Cdf.quantile c 0.05)
    (Cdf.quantile c 0.95)

let test_cdf_zero_weight_entries () =
  (* Zero-weight samples are legal as long as the total is positive. *)
  let c = Cdf.of_weighted [| (1., 0.); (2., 1.) |] in
  Alcotest.(check (float 1e-9)) "median ignores weightless" 2. (Cdf.median c)

let test_weighted_quantile_single () =
  Alcotest.(check (float 1e-9)) "singleton" 3.
    (Quantile.weighted_quantile [| (3., 0.5) |] 0.99)

let test_histogram_boundary_values () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add h 0.;
  (* hi itself lands in overflow (half-open interval). *)
  Histogram.add h 10.;
  Alcotest.(check (float 1e-9)) "lo in first bin" 1. (Histogram.bin_weight h 0);
  Alcotest.(check (float 1e-9)) "hi overflows" 1. (Histogram.overflow h)

let test_series_interpolate_exact_point () =
  let s = Series.make "s" [ (1., 10.); (2., 20.) ] in
  Alcotest.(check (option (float 1e-9))) "at first point" (Some 10.)
    (Series.interpolate s 1.)

let test_series_crossing_descending () =
  let s = Series.make "s" [ (0., 1.); (10., 0.) ] in
  Alcotest.(check (option (float 1e-9))) "descending crossing" (Some 5.)
    (Series.crossing s 0.5)

let test_plot_single_point () =
  let out =
    Ascii_plot.plot ~title:"one" [ Series.make "p" [ (3., 4.) ] ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_plot_flat_series () =
  (* A constant series must not divide by a zero range. *)
  let out =
    Ascii_plot.plot ~title:"flat"
      [ Series.make "c" [ (0., 5.); (1., 5.); (2., 5.) ] ]
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

(* ---- geo edges ---- *)

let test_nearest_is_identity_for_metros () =
  Array.iter
    (fun (c : Netsim_geo.City.t) ->
      Alcotest.(check int) "nearest to itself" c.Netsim_geo.City.id
        (World.nearest c.Netsim_geo.City.coord).Netsim_geo.City.id)
    (Array.sub World.cities 0 25)

let test_coord_boundaries_accepted () =
  ignore (Coord.make ~lat:90. ~lon:180.);
  ignore (Coord.make ~lat:(-90.) ~lon:(-180.))

let test_dateline_distance () =
  (* Points either side of the antimeridian are close, not far. *)
  let a = Coord.make ~lat:0. ~lon:179.5 in
  let b = Coord.make ~lat:0. ~lon:(-179.5) in
  Alcotest.(check bool) "~111 km across the dateline" true
    (Coord.haversine_km a b < 150.)

(* ---- window edges ---- *)

let test_window_zero_days () =
  Alcotest.(check int) "no windows" 0 (List.length (Window.windows ~days:0. ~length_min:15.))

(* ---- bgp edges ---- *)

let test_propagate_from_tier1_origin () =
  (* Announcing from a Tier-1: everyone below hears it as a provider
     route; its peer hears a peer route. *)
  let t = topo () in
  let s = Propagate.run t (Announce.default ~origin:t1a) in
  for x = 0 to Topology.as_count t - 1 do
    Alcotest.(check bool) "reachable" true (Propagate.reachable s x)
  done;
  match Propagate.best s t1b with
  | Some r ->
      Alcotest.(check bool) "peer class at the other tier1" true
        (r.Netsim_bgp.Route.klass = Netsim_bgp.Route.Peer)
  | None -> Alcotest.fail "t1b unreachable"

let test_propagate_from_stub_origin () =
  (* A stub origin: its provider hears a customer route and the whole
     Internet gets it through the hierarchy. *)
  let t = topo () in
  let s = Propagate.run t (Announce.default ~origin:st) in
  (match Propagate.best s eb with
  | Some r ->
      Alcotest.(check bool) "provider hears customer route" true
        (r.Netsim_bgp.Route.klass = Netsim_bgp.Route.Customer)
  | None -> Alcotest.fail "eb unreachable");
  for x = 0 to Topology.as_count t - 1 do
    Alcotest.(check bool) "reachable" true (Propagate.reachable s x)
  done

let test_prepend_zero_is_noop () =
  let t = topo () in
  let base = Propagate.run t (Announce.default ~origin:cp) in
  let zero =
    Propagate.run t
      (Announce.prepend_at_metros (Announce.default ~origin:cp)
         [ ny; chicago; london ] 0)
  in
  for x = 0 to Topology.as_count t - 1 do
    Alcotest.(check bool) "same selection" true
      (Propagate.best base x = Propagate.best zero x)
  done

let test_withhold_empty_list_is_noop () =
  let t = topo () in
  let base = Propagate.run t (Announce.default ~origin:cp) in
  let same =
    Propagate.run t (Announce.withhold_links (Announce.default ~origin:cp) [])
  in
  for x = 0 to Topology.as_count t - 1 do
    Alcotest.(check bool) "same selection" true
      (Propagate.best base x = Propagate.best same x)
  done

let test_remove_all_links () =
  let t = topo () in
  let all = Array.to_list (Topology.links t) in
  let ids = List.map (fun (l : Relation.link) -> l.Relation.id) all in
  let empty = Topology.remove_links t ids in
  Alcotest.(check int) "no links left" 0 (Topology.link_count empty);
  Alcotest.(check int) "ases untouched" (Topology.as_count t)
    (Topology.as_count empty)

(* ---- figure edges ---- *)

let test_figure_no_stats_renders () =
  let f =
    Beatbgp.Figure.make ~id:"x" ~title:"t" ~x_label:"x" ~y_label:"y"
      [ Netsim_stats.Series.make "s" [ (0., 0.) ] ]
  in
  Alcotest.(check bool) "renders without stats" true
    (String.length (Beatbgp.Figure.render f) > 0)

let suite =
  [
    Alcotest.test_case "cdf single value" `Quick test_cdf_single_value;
    Alcotest.test_case "cdf all equal" `Quick test_cdf_all_equal;
    Alcotest.test_case "cdf zero weights" `Quick test_cdf_zero_weight_entries;
    Alcotest.test_case "weighted quantile single" `Quick test_weighted_quantile_single;
    Alcotest.test_case "histogram boundaries" `Quick test_histogram_boundary_values;
    Alcotest.test_case "series exact point" `Quick test_series_interpolate_exact_point;
    Alcotest.test_case "series descending crossing" `Quick test_series_crossing_descending;
    Alcotest.test_case "plot single point" `Quick test_plot_single_point;
    Alcotest.test_case "plot flat series" `Quick test_plot_flat_series;
    Alcotest.test_case "nearest identity" `Quick test_nearest_is_identity_for_metros;
    Alcotest.test_case "coord boundaries" `Quick test_coord_boundaries_accepted;
    Alcotest.test_case "dateline distance" `Quick test_dateline_distance;
    Alcotest.test_case "window zero days" `Quick test_window_zero_days;
    Alcotest.test_case "tier1 origin" `Quick test_propagate_from_tier1_origin;
    Alcotest.test_case "stub origin" `Quick test_propagate_from_stub_origin;
    Alcotest.test_case "prepend zero noop" `Quick test_prepend_zero_is_noop;
    Alcotest.test_case "withhold empty noop" `Quick test_withhold_empty_list_is_noop;
    Alcotest.test_case "remove all links" `Quick test_remove_all_links;
    Alcotest.test_case "figure no stats" `Quick test_figure_no_stats_renders;
  ]
