(* Unit and property tests for the SplitMix64 generator and the
   distribution samplers. *)

module Sm = Netsim_prng.Splitmix
module Dist = Netsim_prng.Dist

let check_float = Alcotest.(check (float 1e-9))

(* ---- Splitmix ---- *)

let test_determinism () =
  let a = Sm.create 123 and b = Sm.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sm.next_int64 a) (Sm.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Sm.create 1 and b = Sm.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Sm.next_int64 a <> Sm.next_int64 b)

let test_copy_replays () =
  let a = Sm.create 7 in
  ignore (Sm.next_int64 a);
  let b = Sm.copy a in
  let xs = List.init 10 (fun _ -> Sm.next_int64 a) in
  let ys = List.init 10 (fun _ -> Sm.next_int64 b) in
  Alcotest.(check (list int64)) "copy replays" xs ys

let test_float_range () =
  let rng = Sm.create 99 in
  for _ = 1 to 10_000 do
    let f = Sm.next_float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_float_mean () =
  let rng = Sm.create 5 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Sm.next_float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_next_int_bounds () =
  let rng = Sm.create 11 in
  for _ = 1 to 10_000 do
    let v = Sm.next_int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_next_int_rejects_nonpositive () =
  let rng = Sm.create 1 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Splitmix.next_int: bound must be positive") (fun () ->
      ignore (Sm.next_int rng 0))

let test_next_int_covers_all_values () =
  let rng = Sm.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Sm.next_int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_split_independence () =
  let a = Sm.create 42 in
  let b = Sm.split a in
  let xs = List.init 20 (fun _ -> Sm.next_int64 a) in
  let ys = List.init 20 (fun _ -> Sm.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_label_stability () =
  let a = Sm.create 42 in
  let s1 = Sm.of_label a "foo" and s2 = Sm.of_label a "foo" in
  Alcotest.(check int64) "same label, same stream" (Sm.next_int64 s1)
    (Sm.next_int64 s2)

let test_label_distinct () =
  let a = Sm.create 42 in
  let s1 = Sm.of_label a "foo" and s2 = Sm.of_label a "bar" in
  Alcotest.(check bool) "labels differ" true
    (Sm.next_int64 s1 <> Sm.next_int64 s2)

let test_label_does_not_advance () =
  let a = Sm.create 42 and b = Sm.create 42 in
  ignore (Sm.of_label a "anything");
  Alcotest.(check int64) "parent unchanged" (Sm.next_int64 a) (Sm.next_int64 b)

(* ---- Distributions ---- *)

let mean_of f n rng =
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. f rng
  done;
  !sum /. float_of_int n

let test_uniform_bounds () =
  let rng = Sm.create 8 in
  for _ = 1 to 5000 do
    let v = Dist.uniform rng ~lo:2. ~hi:5. in
    Alcotest.(check bool) "in [2,5)" true (v >= 2. && v < 5.)
  done

let test_normal_moments () =
  let rng = Sm.create 9 in
  let m = mean_of (fun r -> Dist.normal r ~mean:10. ~std:2.) 50_000 rng in
  Alcotest.(check bool) "mean ~10" true (Float.abs (m -. 10.) < 0.1)

let test_lognormal_positive () =
  let rng = Sm.create 10 in
  for _ = 1 to 5000 do
    Alcotest.(check bool) "positive" true
      (Dist.lognormal rng ~mu:1. ~sigma:0.8 > 0.)
  done

let test_exponential_mean () =
  let rng = Sm.create 12 in
  let m = mean_of (fun r -> Dist.exponential r ~rate:0.5) 50_000 rng in
  Alcotest.(check bool) "mean ~2" true (Float.abs (m -. 2.) < 0.1)

let test_pareto_support () =
  let rng = Sm.create 13 in
  for _ = 1 to 5000 do
    Alcotest.(check bool) "above scale" true
      (Dist.pareto rng ~shape:2. ~scale:3. >= 3.)
  done

let test_poisson_mean () =
  let rng = Sm.create 14 in
  let m =
    mean_of (fun r -> float_of_int (Dist.poisson r ~mean:4.)) 20_000 rng
  in
  Alcotest.(check bool) "mean ~4" true (Float.abs (m -. 4.) < 0.15)

let test_poisson_large_mean () =
  let rng = Sm.create 15 in
  let m =
    mean_of (fun r -> float_of_int (Dist.poisson r ~mean:80.)) 5_000 rng
  in
  Alcotest.(check bool) "mean ~80 (normal approx)" true (Float.abs (m -. 80.) < 2.)

let test_poisson_zero () =
  let rng = Sm.create 16 in
  Alcotest.(check int) "mean 0 gives 0" 0 (Dist.poisson rng ~mean:0.)

let test_bernoulli_frequency () =
  let rng = Sm.create 17 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Dist.bernoulli rng ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p ~0.3" true (Float.abs (f -. 0.3) < 0.01)

let test_zipf_weights_normalized () =
  let z = Dist.zipf_make ~n:100 ~s:1.1 in
  let total = ref 0. in
  for i = 0 to 99 do
    total := !total +. Dist.zipf_weight z i
  done;
  check_float "weights sum to 1" 1. !total

let test_zipf_rank_order () =
  let z = Dist.zipf_make ~n:50 ~s:1.2 in
  Alcotest.(check bool) "rank 0 most popular" true
    (Dist.zipf_weight z 0 > Dist.zipf_weight z 1);
  Alcotest.(check bool) "monotone" true
    (Dist.zipf_weight z 10 > Dist.zipf_weight z 40)

let test_zipf_sample_range () =
  let z = Dist.zipf_make ~n:20 ~s:1.0 in
  let rng = Sm.create 18 in
  for _ = 1 to 5000 do
    let v = Dist.zipf_sample z rng in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 20)
  done

let test_zipf_sample_skew () =
  let z = Dist.zipf_make ~n:100 ~s:1.3 in
  let rng = Sm.create 19 in
  let top = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Dist.zipf_sample z rng < 10 then incr top
  done;
  Alcotest.(check bool) "top-10 ranks dominate" true
    (float_of_int !top /. float_of_int n > 0.5)

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Dist.zipf_make: n must be positive")
    (fun () -> ignore (Dist.zipf_make ~n:0 ~s:1.))

let test_categorical_respects_weights () =
  let rng = Sm.create 20 in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let i = Dist.categorical [| 1.; 2.; 7. |] rng in
    counts.(i) <- counts.(i) + 1
  done;
  let f i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "heaviest bucket wins" true (f 2 > 0.6 && f 2 < 0.8);
  Alcotest.(check bool) "lightest bucket rare" true (f 0 < 0.15)

let test_categorical_invalid () =
  let rng = Sm.create 21 in
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Dist.categorical: weights must sum > 0") (fun () ->
      ignore (Dist.categorical [| 0.; 0. |] rng))

let test_shuffle_permutation () =
  let rng = Sm.create 22 in
  let arr = Array.init 30 Fun.id in
  Dist.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 30 Fun.id) sorted

let test_sample_without_replacement_distinct () =
  let rng = Sm.create 23 in
  let arr = Array.init 50 Fun.id in
  let s = Dist.sample_without_replacement rng 20 arr in
  Alcotest.(check int) "20 elements" 20 (Array.length s);
  let module S = Set.Make (Int) in
  Alcotest.(check int) "all distinct" 20
    (S.cardinal (Array.fold_left (fun acc x -> S.add x acc) S.empty s))

let test_sample_clamps () =
  let rng = Sm.create 24 in
  let s = Dist.sample_without_replacement rng 10 [| 1; 2; 3 |] in
  Alcotest.(check int) "clamped to array length" 3 (Array.length s)

(* ---- qcheck properties ---- *)

let prop_next_int_in_range =
  QCheck.Test.make ~name:"next_int always in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Sm.create seed in
      let v = Sm.next_int rng bound in
      v >= 0 && v < bound)

let prop_float_in_unit =
  QCheck.Test.make ~name:"next_float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Sm.create seed in
      let f = Sm.next_float rng in
      f >= 0. && f < 1.)

let prop_shuffle_preserves =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Sm.create seed in
      let arr = Array.of_list l in
      Dist.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "next_int bounds" `Quick test_next_int_bounds;
    Alcotest.test_case "next_int invalid" `Quick test_next_int_rejects_nonpositive;
    Alcotest.test_case "next_int coverage" `Quick test_next_int_covers_all_values;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "label stability" `Quick test_label_stability;
    Alcotest.test_case "label distinct" `Quick test_label_distinct;
    Alcotest.test_case "label no advance" `Quick test_label_does_not_advance;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
    Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
    Alcotest.test_case "zipf normalized" `Quick test_zipf_weights_normalized;
    Alcotest.test_case "zipf rank order" `Quick test_zipf_rank_order;
    Alcotest.test_case "zipf sample range" `Quick test_zipf_sample_range;
    Alcotest.test_case "zipf sample skew" `Quick test_zipf_sample_skew;
    Alcotest.test_case "zipf invalid" `Quick test_zipf_invalid;
    Alcotest.test_case "categorical weights" `Quick test_categorical_respects_weights;
    Alcotest.test_case "categorical invalid" `Quick test_categorical_invalid;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample distinct" `Quick test_sample_without_replacement_distinct;
    Alcotest.test_case "sample clamps" `Quick test_sample_clamps;
    QCheck_alcotest.to_alcotest prop_next_int_in_range;
    QCheck_alcotest.to_alcotest prop_float_in_unit;
    QCheck_alcotest.to_alcotest prop_shuffle_preserves;
  ]
