(* Tests for coordinates, regions and the world metro database. *)

module Coord = Netsim_geo.Coord
module Region = Netsim_geo.Region
module City = Netsim_geo.City
module World = Netsim_geo.World

let checkf tol = Alcotest.(check (float tol))

(* ---- Coord ---- *)

let test_haversine_zero () =
  let p = Coord.make ~lat:48.86 ~lon:2.35 in
  checkf 1e-9 "self distance" 0. (Coord.haversine_km p p)

let test_haversine_known_pairs () =
  (* New York <-> London is ~5,570 km. *)
  let ny = Coord.make ~lat:40.71 ~lon:(-74.01) in
  let london = Coord.make ~lat:51.51 ~lon:(-0.13) in
  let d = Coord.haversine_km ny london in
  Alcotest.(check bool) "NY-London ~5570km" true (d > 5400. && d < 5750.)

let test_haversine_symmetry () =
  let a = Coord.make ~lat:35.68 ~lon:139.69 in
  let b = Coord.make ~lat:(-33.87) ~lon:151.21 in
  checkf 1e-6 "symmetric" (Coord.haversine_km a b) (Coord.haversine_km b a)

let test_haversine_antipodal_bound () =
  (* No two points can be farther than half the circumference. *)
  let a = Coord.make ~lat:0. ~lon:0. in
  let b = Coord.make ~lat:0. ~lon:180. in
  let d = Coord.haversine_km a b in
  Alcotest.(check bool) "about 20,015 km" true (d > 19_900. && d < 20_100.)

let test_rtt_conversion () =
  checkf 1e-9 "100km = 1ms RTT" 1. (Coord.rtt_ms_of_km 100.);
  checkf 1e-9 "zero" 0. (Coord.rtt_ms_of_km 0.)

let test_geodesic_rtt () =
  let ny = Coord.make ~lat:40.71 ~lon:(-74.01) in
  let london = Coord.make ~lat:51.51 ~lon:(-0.13) in
  let rtt = Coord.geodesic_rtt_ms ny london in
  Alcotest.(check bool) "NY-London ~56ms floor" true (rtt > 54. && rtt < 58.)

let test_coord_validation () =
  Alcotest.check_raises "lat" (Invalid_argument "Coord.make: lat out of range")
    (fun () -> ignore (Coord.make ~lat:91. ~lon:0.));
  Alcotest.check_raises "lon" (Invalid_argument "Coord.make: lon out of range")
    (fun () -> ignore (Coord.make ~lat:0. ~lon:200.))

(* ---- Region ---- *)

let test_continent_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "roundtrip" true
        (Region.continent_of_string (Region.continent_to_string c) = Some c))
    Region.all_continents

let test_continent_unknown () =
  Alcotest.(check bool) "unknown" true (Region.continent_of_string "XX" = None)

let test_scope_world () =
  Alcotest.(check bool) "world accepts all" true
    (Region.in_scope Region.World Region.Africa ~country:"KE")

let test_scope_europe () =
  Alcotest.(check bool) "europe yes" true
    (Region.in_scope Region.Europe_only Region.Europe ~country:"DE");
  Alcotest.(check bool) "asia no" false
    (Region.in_scope Region.Europe_only Region.Asia ~country:"JP")

let test_scope_us () =
  Alcotest.(check bool) "US yes" true
    (Region.in_scope Region.United_states Region.North_america ~country:"US");
  Alcotest.(check bool) "CA no" false
    (Region.in_scope Region.United_states Region.North_america ~country:"CA")

(* ---- World ---- *)

let test_world_nonempty () =
  Alcotest.(check bool) "at least 120 metros" true (World.count >= 120)

let test_world_ids_dense () =
  Array.iteri
    (fun i (c : City.t) -> Alcotest.(check int) "id = index" i c.City.id)
    World.cities

let test_world_every_continent_covered () =
  List.iter
    (fun continent ->
      Alcotest.(check bool)
        (Printf.sprintf "continent %s has metros"
           (Region.continent_to_string continent))
        true
        (World.by_continent continent <> []))
    Region.all_continents

let test_world_find () =
  let london = World.find_exn "London" in
  Alcotest.(check string) "country" "GB" london.City.country;
  Alcotest.(check bool) "missing" true (World.find "Atlantis" = None)

let test_world_find_exn_missing () =
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (World.find_exn "Atlantis"))

let test_world_by_country () =
  let us = World.by_country "US" in
  Alcotest.(check bool) "US has many metros" true (List.length us >= 10);
  List.iter
    (fun (c : City.t) -> Alcotest.(check string) "all US" "US" c.City.country)
    us

let test_world_india_present () =
  (* Fig. 5's anomaly requires Indian metros. *)
  Alcotest.(check bool) "several Indian metros" true
    (List.length (World.by_country "IN") >= 4)

let test_world_countries_sorted_distinct () =
  let cs = World.countries in
  Alcotest.(check bool) "sorted" true (cs = List.sort_uniq compare cs)

let test_world_nearest () =
  let near_paris = Coord.make ~lat:48.8 ~lon:2.4 in
  Alcotest.(check string) "nearest to Paris coords" "Paris"
    (World.nearest near_paris).City.name

let test_world_population_positive () =
  Array.iter
    (fun (c : City.t) ->
      Alcotest.(check bool) "positive population" true (c.City.population_m > 0.))
    World.cities

let test_world_weights_normalized () =
  let total = Array.fold_left ( +. ) 0. World.population_weights in
  checkf 1e-9 "weights sum to 1" 1. total

let test_world_coords_valid () =
  Array.iter
    (fun (c : City.t) ->
      let { Coord.lat; lon } = c.City.coord in
      Alcotest.(check bool) "valid coord" true
        (lat >= -90. && lat <= 90. && lon >= -180. && lon <= 180.))
    World.cities

let test_hub_score_boost () =
  let frankfurt = World.find_exn "Frankfurt" in
  let moscow = World.find_exn "Moscow" in
  (* Frankfurt (2.7M) must outrank Moscow (17.1M) as an
     interconnection hub. *)
  Alcotest.(check bool) "hub beats megacity" true
    (World.hub_score frankfurt > World.hub_score moscow)

let test_city_distance_helpers () =
  let a = World.find_exn "Tokyo" and b = World.find_exn "Osaka" in
  let d = City.distance_km a b in
  Alcotest.(check bool) "Tokyo-Osaka ~400km" true (d > 350. && d < 450.);
  checkf 1e-9 "rtt = km/100" (d /. 100.) (City.rtt_ms a b)

let suite =
  [
    Alcotest.test_case "haversine zero" `Quick test_haversine_zero;
    Alcotest.test_case "haversine NY-London" `Quick test_haversine_known_pairs;
    Alcotest.test_case "haversine symmetry" `Quick test_haversine_symmetry;
    Alcotest.test_case "haversine antipodal" `Quick test_haversine_antipodal_bound;
    Alcotest.test_case "rtt conversion" `Quick test_rtt_conversion;
    Alcotest.test_case "geodesic rtt" `Quick test_geodesic_rtt;
    Alcotest.test_case "coord validation" `Quick test_coord_validation;
    Alcotest.test_case "continent roundtrip" `Quick test_continent_roundtrip;
    Alcotest.test_case "continent unknown" `Quick test_continent_unknown;
    Alcotest.test_case "scope world" `Quick test_scope_world;
    Alcotest.test_case "scope europe" `Quick test_scope_europe;
    Alcotest.test_case "scope US" `Quick test_scope_us;
    Alcotest.test_case "world nonempty" `Quick test_world_nonempty;
    Alcotest.test_case "world ids dense" `Quick test_world_ids_dense;
    Alcotest.test_case "continents covered" `Quick test_world_every_continent_covered;
    Alcotest.test_case "world find" `Quick test_world_find;
    Alcotest.test_case "find_exn missing" `Quick test_world_find_exn_missing;
    Alcotest.test_case "by country" `Quick test_world_by_country;
    Alcotest.test_case "india present" `Quick test_world_india_present;
    Alcotest.test_case "countries sorted" `Quick test_world_countries_sorted_distinct;
    Alcotest.test_case "nearest" `Quick test_world_nearest;
    Alcotest.test_case "population positive" `Quick test_world_population_positive;
    Alcotest.test_case "weights normalized" `Quick test_world_weights_normalized;
    Alcotest.test_case "coords valid" `Quick test_world_coords_valid;
    Alcotest.test_case "hub score boost" `Quick test_hub_score_boost;
    Alcotest.test_case "city distance helpers" `Quick test_city_distance_helpers;
  ]
