(* Dynamics engine tests: timeline ordering, event semantics on the
   hand-built fixture, determinism (traced and untraced), and the
   incremental-reconvergence-equals-full-run property on random
   single-link failures. *)

module Sm = Netsim_prng.Splitmix
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Announce = Netsim_bgp.Announce
module Route = Netsim_bgp.Route
module Propagate = Netsim_bgp.Propagate
module Params = Netsim_latency.Params
module Congestion = Netsim_latency.Congestion
module Event = Netsim_dynamics.Event
module Timeline = Netsim_dynamics.Timeline
module Engine = Netsim_dynamics.Engine
module Script = Netsim_dynamics.Script
open Fixture

(* Routing digest (shared): see Test_util.digest. *)
let digest = Test_util.digest

(* ---- Timeline ---- *)

let test_timeline_order () =
  let tl = Timeline.create () in
  Timeline.schedule tl ~at:3. "c";
  Timeline.schedule tl ~at:1. "a";
  Timeline.schedule tl ~at:2. "b";
  Timeline.schedule tl ~at:1. "a2";
  Alcotest.(check int) "length" 4 (Timeline.length tl);
  Alcotest.(check (list (pair (float 0.) string)))
    "time order, FIFO on ties"
    [ (1., "a"); (1., "a2"); (2., "b"); (3., "c") ]
    (Timeline.drain tl);
  Alcotest.(check bool) "empty after drain" true (Timeline.is_empty tl)

let test_timeline_nan_rejected () =
  let tl = Timeline.create () in
  Alcotest.check_raises "NaN time" (Invalid_argument "Timeline.schedule: NaN time")
    (fun () -> Timeline.schedule tl ~at:Float.nan ())

let test_timeline_interleaved () =
  (* FIFO among equal times must survive interleaved pops. *)
  let tl = Timeline.create () in
  Timeline.schedule tl ~at:1. 0;
  Timeline.schedule tl ~at:1. 1;
  Alcotest.(check (option (pair (float 0.) int))) "first" (Some (1., 0))
    (Timeline.pop tl);
  Timeline.schedule tl ~at:1. 2;
  Alcotest.(check (option (pair (float 0.) int))) "second" (Some (1., 1))
    (Timeline.pop tl);
  Alcotest.(check (option (pair (float 0.) int))) "third" (Some (1., 2))
    (Timeline.pop tl)

(* ---- Engine event semantics on the fixture ---- *)

let engine_cp () =
  let t = topo () in
  let eng = Engine.create t in
  Engine.track eng (Announce.default ~origin:cp);
  (t, eng)

let test_flap_restores_state () =
  let t, eng = engine_cp () in
  let before = digest t (Engine.routing eng ~origin:cp) in
  Engine.schedule eng ~at:10.
    (Event.Link_flap { link_id = l_cp_t1a_ny; down_minutes = 5. });
  Engine.run eng ~until:12.;
  Alcotest.(check bool) "link down" false (Engine.link_is_up eng l_cp_t1a_ny);
  let during = digest t (Engine.routing eng ~origin:cp) in
  Alcotest.(check bool) "routing changed while down" true (before <> during);
  Engine.run eng ~until:20.;
  Alcotest.(check bool) "link back up" true (Engine.link_is_up eng l_cp_t1a_ny);
  Alcotest.(check string) "routing restored" before
    (digest t (Engine.routing eng ~origin:cp));
  Alcotest.(check int) "down+up processed" 2 (Engine.events_processed eng)

let test_duplicate_down_ignored () =
  let t, eng = engine_cp () in
  ignore t;
  Engine.schedule eng ~at:1. (Event.Link_down l_st_eb);
  Engine.schedule eng ~at:2. (Event.Link_down l_st_eb);
  Engine.run eng ~until:3.;
  Alcotest.(check (list int)) "down once" [ l_st_eb ] (Engine.down_links eng);
  (* Only the first down touched routing. *)
  Alcotest.(check int) "one convergence record" 1
    (List.length (Engine.convergence_log eng))

let test_site_down_up () =
  let t, eng = engine_cp () in
  Engine.schedule eng ~at:1. (Event.Site_down { asid = cp; metro = ny });
  Engine.run eng ~until:2.;
  (* All CP sessions at NY fail together: transit and the public peering. *)
  Alcotest.(check (list int)) "ny links down"
    (List.sort compare [ l_cp_t1a_ny; l_cp_eb_pub ])
    (Engine.down_links eng);
  let before = digest t (Engine.routing eng ~origin:cp) in
  Engine.schedule eng ~at:3. (Event.Site_up { asid = cp; metro = ny });
  Engine.run eng ~until:4.;
  Alcotest.(check (list int)) "restored" [] (Engine.down_links eng);
  Alcotest.(check bool) "routing differs while site down" true
    (before <> digest t (Engine.routing eng ~origin:cp))

let test_withdraw_reannounce () =
  let t, eng = engine_cp () in
  let before = digest t (Engine.routing eng ~origin:cp) in
  Engine.schedule eng ~at:1. (Event.Withdraw_prefix { origin = cp });
  Engine.run eng ~until:2.;
  let st_state = Engine.routing eng ~origin:cp in
  Alcotest.(check bool) "unreachable after withdraw" false
    (Propagate.reachable st_state st);
  Engine.schedule eng ~at:3. (Event.Reannounce_prefix { origin = cp });
  Engine.run eng ~until:4.;
  Alcotest.(check string) "reannounce restores routing" before
    (digest t (Engine.routing eng ~origin:cp));
  let full_runs =
    List.fold_left
      (fun acc (c : Engine.convergence) -> acc + c.Engine.cv_full_runs)
      0 (Engine.convergence_log eng)
  in
  Alcotest.(check int) "two full repropagations" 2 full_runs

let test_congestion_overlay () =
  let t = topo () in
  let cong = Congestion.create Params.default t ~seed:5 in
  let eng = Engine.create ~congestion:cong t in
  Engine.schedule eng ~at:1.
    (Event.Congestion_onset
       { link_id = l_eb_tr; extra_ms = 30.; duration_min = 10. });
  Engine.schedule eng ~at:5.
    (Event.Congestion_onset
       { link_id = l_eb_tr; extra_ms = 12.; duration_min = 2. });
  Engine.run eng ~until:6.;
  Alcotest.(check (float 1e-9)) "overlapping onsets add" 42.
    (Congestion.event_delay_ms cong ~link_id:l_eb_tr);
  Engine.run eng ~until:8.;
  Alcotest.(check (float 1e-9)) "first decay" 30.
    (Congestion.event_delay_ms cong ~link_id:l_eb_tr);
  Engine.run eng ~until:20.;
  Alcotest.(check (float 1e-9)) "fully decayed" 0.
    (Congestion.event_delay_ms cong ~link_id:l_eb_tr)

let test_processes_observe_and_schedule () =
  let _, eng = engine_cp () in
  let seen = ref [] in
  Engine.subscribe eng (fun e ~time ev ->
      seen := (time, Event.label ev) :: !seen;
      (* A process may schedule follow-on events (controller style). *)
      match ev with
      | Event.Mark "ping" -> Engine.schedule e ~at:(time +. 1.) (Event.Mark "pong")
      | _ -> ());
  Engine.schedule eng ~at:1. (Event.Mark "ping");
  Engine.run eng ~until:5.;
  Alcotest.(check (list (pair (float 0.) string)))
    "process saw both events"
    [ (1., "mark:ping"); (2., "mark:pong") ]
    (List.rev !seen)

(* ---- Determinism ---- *)

let storm_script topo rng =
  let link_ids = Array.init (Topology.link_count topo) (fun i -> i) in
  Script.flaps rng ~link_ids ~mean_interval_min:30. ~mean_down_min:15. ~days:1
  @ Script.congestion_bursts rng ~link_ids ~mean_interval_min:60.
      ~median_extra_ms:25. ~sigma:0.5 ~mean_duration_min:20. ~days:1
  @ Script.measurement_ticks ~controller:0 ~period_min:45. ~days:1

let run_storm () =
  let topo = Generator.generate Generator.small_params in
  let origin = List.hd (Topology.by_klass topo Asn.Eyeball) in
  let cong = Congestion.create Params.default topo ~seed:3 in
  let eng = Engine.create ~congestion:cong topo in
  Engine.track eng (Announce.default ~origin);
  Script.schedule_all eng (storm_script topo (Sm.create 99));
  Engine.run eng ~until:(24. *. 60.);
  let log =
    Engine.event_log eng
    |> List.map (fun (at, ev) -> Printf.sprintf "%.6f %s" at (Event.label ev))
    |> String.concat "\n"
  in
  (log, digest topo (Engine.routing eng ~origin), Engine.events_processed eng)

let test_determinism_untraced () =
  let log1, d1, n1 = run_storm () in
  let log2, d2, n2 = run_storm () in
  Alcotest.(check string) "event logs byte-identical" log1 log2;
  Alcotest.(check string) "routing digests identical" d1 d2;
  Alcotest.(check int) "event counts equal" n1 n2;
  Alcotest.(check bool) "storm non-trivial" true (n1 > 10)

let test_determinism_traced () =
  let log1, d1, _ = run_storm () in
  Netsim_obs.Metrics.set_enabled true;
  let log2, d2, _ =
    Fun.protect
      ~finally:(fun () -> Netsim_obs.Metrics.set_enabled false)
      run_storm
  in
  Alcotest.(check string) "tracing does not perturb events" log1 log2;
  Alcotest.(check string) "tracing does not perturb routing" d1 d2

(* ---- Incremental == full (property) ---- *)

let test_incremental_equals_full () =
  let topo = Generator.generate Generator.small_params in
  let origin = List.hd (Topology.by_klass topo Asn.Eyeball) in
  let config = Announce.default ~origin in
  let state = Propagate.run topo config in
  let base = digest topo state in
  let rng = Sm.create 1234 in
  let n_links = Topology.link_count topo in
  for case = 1 to 50 do
    let l = Sm.next_int rng n_links in
    let failed = Topology.remove_links topo [ l ] in
    let full = Propagate.run failed config in
    let inc, stats =
      Propagate.reconverge state ~topo:failed (Propagate.Link_removed l)
    in
    Alcotest.(check string)
      (Printf.sprintf "case %d: removal of link %d (dirty %d)" case l
         (Propagate.rs_dirty stats))
      (digest failed full) (digest failed inc);
    let restored, _ = Propagate.reconverge inc ~topo (Propagate.Link_added l) in
    Alcotest.(check string)
      (Printf.sprintf "case %d: restore of link %d" case l)
      base (digest topo restored)
  done

let test_script_generators_deterministic () =
  let link_ids = [| 0; 1; 2; 3 |] in
  let gen () =
    Script.flaps (Sm.create 7) ~link_ids ~mean_interval_min:10.
      ~mean_down_min:5. ~days:1
    |> List.map (fun (at, ev) -> (at, Event.label ev))
  in
  Alcotest.(check (list (pair (float 0.) string)))
    "same seed, same script" (gen ()) (gen ());
  Alcotest.(check bool) "non-empty" true (gen () <> []);
  List.iter
    (fun (at, _) ->
      Alcotest.(check bool) "within horizon" true (at >= 0. && at < 1440.))
    (gen ())

(* Reconvergence over >= 4 tracked prefixes shards across the domain
   pool; the sharded path must produce exactly the sequential states,
   counters and convergence log at any domain count. *)
let test_sharded_reconverge_domains () =
  let origins = [ cp; eb; st; t1a ] in
  let storm eng =
    Engine.schedule eng ~at:1.
      (Event.Link_flap { link_id = l_cp_t1a_ny; down_minutes = 5. });
    Engine.schedule eng ~at:2. (Event.Link_down l_st_eb);
    Engine.schedule eng ~at:8. (Event.Link_up l_st_eb);
    Engine.run eng ~until:20.
  in
  let run domains =
    Netsim_par.Pool.set_domain_count domains;
    let t = topo () in
    let eng = Engine.create t in
    List.iter (fun o -> Engine.track eng (Announce.default ~origin:o)) origins;
    storm eng;
    ( List.map (fun o -> digest t (Engine.routing eng ~origin:o)) origins,
      Engine.events_processed eng,
      List.length (Engine.convergence_log eng) )
  in
  let saved = Netsim_par.Pool.domain_count () in
  Fun.protect
    ~finally:(fun () -> Netsim_par.Pool.set_domain_count saved)
    (fun () ->
      let d1, e1, c1 = run 1 in
      let d4, e4, c4 = run 4 in
      Alcotest.(check (list string)) "tracked states identical" d1 d4;
      Alcotest.(check int) "events processed identical" e1 e4;
      Alcotest.(check int) "convergence records identical" c1 c4)

let suite =
  [
    Alcotest.test_case "timeline: time order, FIFO ties" `Quick
      test_timeline_order;
    Alcotest.test_case "timeline: NaN rejected" `Quick test_timeline_nan_rejected;
    Alcotest.test_case "timeline: interleaved pops keep FIFO" `Quick
      test_timeline_interleaved;
    Alcotest.test_case "engine: flap restores routing" `Quick
      test_flap_restores_state;
    Alcotest.test_case "engine: duplicate down is a no-op" `Quick
      test_duplicate_down_ignored;
    Alcotest.test_case "engine: site down/up fails metro links" `Quick
      test_site_down_up;
    Alcotest.test_case "engine: withdraw and reannounce" `Quick
      test_withdraw_reannounce;
    Alcotest.test_case "engine: congestion overlay add/decay" `Quick
      test_congestion_overlay;
    Alcotest.test_case "engine: processes observe and schedule" `Quick
      test_processes_observe_and_schedule;
    Alcotest.test_case "determinism: same seed, same storm" `Quick
      test_determinism_untraced;
    Alcotest.test_case "determinism: tracing does not perturb" `Quick
      test_determinism_traced;
    Alcotest.test_case "property: incremental == full on 50 random failures"
      `Quick test_incremental_equals_full;
    Alcotest.test_case "engine: sharded reconvergence matches at domains 1/4"
      `Quick test_sharded_reconverge_domains;
    Alcotest.test_case "script: generators deterministic" `Quick
      test_script_generators_deterministic;
  ]
