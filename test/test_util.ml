(* Helpers shared across test modules: substring matching, a tiny JSON
   parser (to round-trip the Jsonx emitter), and the routing digest
   used to compare BGP states.  Keep test-only utilities here instead
   of re-declaring them per file. *)

module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Route = Netsim_bgp.Route
module Propagate = Netsim_bgp.Propagate
module Jsonx = Netsim_obs.Jsonx

(* The stdlib has no String.is_substring. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec go i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else go (i + 1)
    in
    go 0
  end

(* Routing digest: selection-relevant facts for every AS, rendered so
   mismatches show up as readable diffs. *)
let digest topo state =
  let buf = Buffer.create 256 in
  for asid = 0 to Topology.as_count topo - 1 do
    let best =
      match Propagate.best state asid with
      | Some (r : Route.t) ->
          Printf.sprintf "%d/%d/%d" r.Route.next_hop
            r.Route.via_link.Relation.id r.Route.path_len
      | None -> "-"
    in
    Buffer.add_string buf
      (Printf.sprintf "%d:%s:%s:%s\n" asid best
         (String.concat "." (List.map string_of_int (Propagate.as_path state asid)))
         (match Propagate.selected_class state asid with
         | Some k -> Route.klass_to_string k
         | None -> "-"))
  done;
  Buffer.contents buf

(* ---- a tiny JSON parser (test-only) to round-trip the emitter ---- *)

exception Parse_error of string

let parse_json (s : string) : Jsonx.t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let raw = String.sub s start (!pos - start) in
    match int_of_string_opt raw with
    | Some i -> Jsonx.Int i
    | None -> (
        match float_of_string_opt raw with
        | Some f -> Jsonx.Float f
        | None -> fail (Printf.sprintf "bad number %S" raw))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Jsonx.Null
    | Some 't' -> literal "true" (Jsonx.Bool true)
    | Some 'f' -> literal "false" (Jsonx.Bool false)
    | Some '"' -> Jsonx.String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jsonx.Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jsonx.Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jsonx.Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jsonx.Obj (fields [])
        end
    | _ -> fail "expected value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v
