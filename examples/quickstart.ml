(* Quickstart: build a small Internet, compute BGP routes to a
   destination, walk a flow and print its metro-level path and RTT.

   Run with:  dune exec examples/quickstart.exe *)

module Sm = Netsim_prng.Splitmix
module Generator = Netsim_topo.Generator
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Route = Netsim_bgp.Route
module Walk = Netsim_bgp.Walk
module Params = Netsim_latency.Params
module Congestion = Netsim_latency.Congestion
module Propagation = Netsim_latency.Propagation
module Rtt = Netsim_latency.Rtt
module World = Netsim_geo.World
module City = Netsim_geo.City

let city_name i = World.cities.(i).City.name

let () =
  (* 1. A small but structurally realistic Internet: Tier-1 clique,
     regional transits, per-country eyeballs, stubs. *)
  let topo = Generator.generate Generator.small_params in
  Printf.printf "Generated Internet: %d ASes, %d links\n"
    (Topology.as_count topo) (Topology.link_count topo);

  (* 2. Pick a destination (the first eyeball ISP) and compute every
     AS's BGP route to it with one propagation run. *)
  let dest = List.hd (Topology.by_klass topo Asn.Eyeball) in
  let state = Propagate.run topo (Announce.default ~origin:dest) in
  Printf.printf "Destination: %s\n" (Topology.asn topo dest).Asn.name;

  (* 3. Inspect a stub's selected route and Adj-RIB-In. *)
  let src = List.hd (Topology.by_klass topo Asn.Stub) in
  (match Propagate.best state src with
  | Some route ->
      Printf.printf "%s selected a %s route, AS path [%s]\n"
        (Topology.asn topo src).Asn.name
        (Route.klass_to_string route.Route.klass)
        (String.concat "; "
           (List.map
              (fun a -> (Topology.asn topo a).Asn.name)
              route.Route.as_path))
  | None -> print_endline "unreachable (should not happen)");
  Printf.printf "It received %d announcements in total\n"
    (List.length (Propagate.received state src));

  (* 4. Walk the flow at metro level (hot-potato link selection) and
     price it with the latency model. *)
  match Walk.of_source state ~src with
  | None -> print_endline "no walk"
  | Some walk ->
      List.iter
        (fun (h : Walk.hop) ->
          Printf.printf "  %s carries %s -> %s\n"
            (Topology.asn topo h.Walk.asid).Asn.name
            (city_name h.Walk.ingress) (city_name h.Walk.egress))
        walk.Walk.hops;
      let congestion = Congestion.create Params.default topo ~seed:1 in
      let flow =
        Rtt.make_flow ~access:(Congestion.Access 0)
          ~terminal:Propagation.At_entry walk
      in
      let rng = Sm.create 7 in
      let sample = Rtt.sample_ms congestion ~rng ~time_min:600. flow in
      Printf.printf "MinRTT sample at 10:00 UTC: %.1f ms\n" sample
