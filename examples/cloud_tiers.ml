(* Premium vs Standard cloud networking tiers (the paper's §2.3.3
   setting): compare the private-WAN route against the public-BGP
   route from vantage points around the world, including the India
   anomaly.

   Run with:  dune exec examples/cloud_tiers.exe *)

module S = Beatbgp.Scenario
module Sm = Netsim_prng.Splitmix
module Tiers = Netsim_wan.Tiers
module Vantage = Netsim_measure.Vantage
module Campaign = Netsim_measure.Campaign
module World = Netsim_geo.World
module City = Netsim_geo.City

let () =
  let gc = S.google ~n_vantage:400 () in
  let tiers = gc.S.gc_tiers in
  let rng = Sm.of_label gc.S.gc_root "example" in
  Printf.printf "Cloud deployment: DC at %s, %d WAN edge PoPs\n"
    Netsim_wan.Cloud.dc_city_name
    (List.length (Tiers.cloud tiers).Netsim_wan.Cloud.edge_metros);
  print_endline "vantage point        premium  standard    diff  (std - prem)";
  print_endline "--------------------------------------------------------------";
  let shown = ref 0 in
  Array.iter
    (fun vp ->
      if !shown < 15 && Tiers.qualifies tiers vp then begin
        match (Tiers.premium_flow tiers vp, Tiers.standard_flow tiers vp) with
        | Some pf, Some sf ->
            incr shown;
            let ping flow =
              Campaign.ping_median gc.S.gc_congestion ~rng ~days:2. ~per_day:10
                ~pings_per_round:5 flow
            in
            let p = ping pf and s = ping sf in
            Printf.printf "%-14s (%s)  %6.1f    %6.1f  %+7.1f  %s\n"
              World.cities.(vp.Vantage.city).City.name (Vantage.country vp) p s
              (s -. p)
              (if s -. p > 10. then "WAN wins"
               else if s -. p < -10. then "public BGP wins"
               else "tie")
        | _, _ -> ()
      end)
    gc.S.gc_vantage;
  (* The headline per-country map. *)
  let fig5 = Beatbgp.Fig5_cloud_tiers.run gc in
  print_endline "";
  print_string (Beatbgp.Fig5_cloud_tiers.render_map fig5)
