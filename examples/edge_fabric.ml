(* Edge-Fabric-style egress engineering at a content provider's PoPs
   (the paper's §2.3.1 setting, scaled down).

   For a handful of client prefixes, spray sessions over BGP's top-3
   egress routes in one measurement window and show what an omniscient
   performance-aware controller would have picked vs what BGP picked.

   Run with:  dune exec examples/edge_fabric.exe *)

module S = Beatbgp.Scenario
module Sm = Netsim_prng.Splitmix
module Egress = Netsim_cdn.Egress
module Edge_controller = Netsim_cdn.Edge_controller
module Relation = Netsim_topo.Relation
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module World = Netsim_geo.World
module City = Netsim_geo.City

let kind_name (o : Egress.option_route) =
  Relation.kind_to_string o.Egress.route.Netsim_bgp.Route.via_link.Relation.kind

let () =
  let fb = S.facebook ~sizes:S.test_sizes () in
  Printf.printf "Deployment: %d PoPs, %d PNI peers, %d public peers\n"
    (List.length fb.S.fb_deployment.Netsim_cdn.Deployment.pops)
    fb.S.fb_deployment.Netsim_cdn.Deployment.pni_count
    fb.S.fb_deployment.Netsim_cdn.Deployment.public_peer_count;
  let rng = Sm.of_label fb.S.fb_root "example" in
  let window = { Window.index = 40; start_min = 600.; length_min = 15. } in
  let shown = ref 0 in
  Array.iter
    (fun (entry : Egress.entry) ->
      if !shown < 8 && List.length entry.Egress.options >= 2 then begin
        incr shown;
        let r =
          Edge_controller.measure_window fb.S.fb_congestion ~rng
            ~samples_per_route:15 window entry
        in
        let p = entry.Egress.prefix in
        Printf.printf "\nprefix %3d  client %-12s served from PoP %s\n"
          p.Prefix.id
          World.cities.(p.Prefix.city).City.name
          World.cities.(entry.Egress.pop).City.name;
        List.iteri
          (fun i (m : Edge_controller.route_measurement) ->
            Printf.printf "  route %d (%-12s)  median %6.1f ms  CI [%5.1f, %5.1f]%s\n"
              i
              (kind_name m.Edge_controller.option_route)
              m.Edge_controller.median_ms m.Edge_controller.ci.Netsim_stats.Ci.lo
              m.Edge_controller.ci.Netsim_stats.Ci.hi
              (if i = 0 then "  <- BGP's choice" else ""))
          r.Edge_controller.per_route;
        match Edge_controller.improvement_ms r with
        | Some d when d > 1. ->
            Printf.printf "  -> controller override would save %.1f ms\n" d
        | Some d ->
            Printf.printf "  -> BGP already best (alternate %+.1f ms)\n" (-.d)
        | None -> ()
      end)
    fb.S.fb_entries
