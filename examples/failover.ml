(* Availability under a front-end site failure (the paper's §4):
   watch BGP anycast reconverge around a dead site while
   DNS-redirected clients stay pinned to it for a TTL.

   Run with:  dune exec examples/failover.exe *)

module S = Beatbgp.Scenario
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Walk = Netsim_bgp.Walk
module Anycast = Netsim_cdn.Anycast
module Deployment = Netsim_cdn.Deployment
module Prefix = Netsim_traffic.Prefix
module World = Netsim_geo.World
module City = Netsim_geo.City

let name i = World.cities.(i).City.name

let () =
  let ms = S.microsoft ~sizes:S.test_sizes () in
  let system = ms.S.ms_system in
  let d = Anycast.deployment system in
  let topo = d.Deployment.topo in
  let asid = d.Deployment.asid in
  (* Pick the busiest site by catchment. *)
  let catchment = Anycast.catchment system in
  let busiest =
    Netsim_bgp.Catchment.sites catchment
    |> List.map (fun s ->
           (List.length (Netsim_bgp.Catchment.clients_of_site catchment s), s))
    |> List.sort compare |> List.rev |> List.hd |> snd
  in
  Printf.printf "Failing the busiest front-end: %s\n\n" (name busiest);
  (* Kill every provider session at that metro. *)
  let dead_links =
    Topology.neighbors topo asid
    |> List.filter_map (fun (nb : Topology.neighbor) ->
           if nb.Topology.link.Relation.metro = busiest then
             Some nb.Topology.link.Relation.id
           else None)
  in
  let failed = Topology.remove_links topo dead_links in
  let before = Propagate.run topo (Announce.default ~origin:asid) in
  let after = Propagate.run failed (Announce.default ~origin:asid) in
  Printf.printf "%-16s %-14s -> %-14s\n" "client" "before" "after";
  print_endline "------------------------------------------------";
  let shown = ref 0 in
  Array.iter
    (fun (p : Prefix.t) ->
      let site state =
        match
          Walk.from_metro state ~src:p.Prefix.asid ~start_metro:p.Prefix.city
        with
        | Some w -> Some (Walk.entry_metro w)
        | None -> None
      in
      match (site before, site after) with
      | Some b, Some a when b = busiest && !shown < 12 ->
          incr shown;
          Printf.printf "%-16s %-14s -> %-14s%s\n" (name p.Prefix.city) (name b)
            (name a)
            (if a = b then "  (!!)" else "")
      | Some b, None when b = busiest ->
          Printf.printf "%-16s %-14s -> STRANDED\n" (name p.Prefix.city) (name b)
      | _ -> ())
    ms.S.ms_prefixes;
  (* The full §4 analysis: all top sites, incl. the DNS-pinning cost. *)
  print_endline "";
  let avail = Beatbgp.Availability.run ms in
  Printf.printf
    "Across the %d largest sites: anycast strands %.1f%%, adds %.0f ms median;\n"
    (List.length avail.Beatbgp.Availability.failures)
    (100.
    *. List.fold_left
         (fun acc (f : Beatbgp.Availability.site_failure) ->
           Float.max acc f.Beatbgp.Availability.stranded_share)
         0. avail.Beatbgp.Availability.failures)
    avail.Beatbgp.Availability.mean_anycast_delta_ms;
  Printf.printf
    "DNS redirection pins %.1f%% of traffic to a dead site for the TTL.\n"
    (100. *. avail.Beatbgp.Availability.mean_dns_outage_share)
