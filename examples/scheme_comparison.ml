(* The unified scheme-comparison harness: evaluate BGP against
   oracles and realistic redirection under identical clients, windows
   and congestion weather — the whole paper in two win matrices.

   Run with:  dune exec examples/scheme_comparison.exe *)

module S = Beatbgp.Scenario
module Sch = Beatbgp.Scheme
module Window = Netsim_traffic.Window

let () =
  let sizes = { S.test_sizes with S.n_prefixes = 120; days = 1. } in
  let rng = Netsim_prng.Splitmix.create 5 in
  let windows = Window.windows ~days:1. ~length_min:90. in

  print_endline "=== Egress engineering: can anything beat BGP's choice? ===\n";
  let fb = S.facebook ~sizes () in
  let egress =
    Sch.compare_schemes
      [ Sch.egress_bgp fb; Sch.egress_static_oracle fb; Sch.egress_oracle fb ]
      ~prefixes:fb.S.fb_prefixes ~rng ~windows
  in
  print_string (Sch.render egress);
  Printf.printf
    "\n-> even an omniscient controller beats BGP on only %.1f%% of points;\n"
    (100. *. Sch.win_rate egress "oracle-dynamic" "bgp");
  Printf.printf
    "   a static best-route oracle on %.1f%% — BGP's choice is near-optimal.\n\n"
    (100. *. Sch.win_rate egress "oracle-static" "bgp");

  print_endline "=== Anycast CDN: does DNS redirection beat BGP anycast? ===\n";
  let ms = S.microsoft ~sizes () in
  let cdn =
    Sch.compare_schemes
      [
        Sch.anycast ms;
        Sch.unicast_oracle ms;
        Sch.dns_redirection ms;
        Sch.dns_redirection ~margin:25. ~name:"hybrid-25ms" ms;
      ]
      ~prefixes:ms.S.ms_prefixes ~rng ~windows
  in
  print_string (Sch.render cdn);
  Printf.printf
    "\n-> realistic redirection beats anycast on %.0f%% of points but loses on %.0f%%\n"
    (100. *. Sch.win_rate cdn "dns-redirection" "anycast")
    (100. *. Sch.win_rate cdn "anycast" "dns-redirection");
  print_endline
    "   (the paper: \"performing worse than anycast nearly as often as they beat it\")"
