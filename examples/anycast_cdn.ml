(* Anycast CDN serving with DNS redirection (the paper's §2.3.2
   setting): where does BGP anycast send each client, how far is that
   from its best front-end, and what does the per-LDNS redirector
   decide?

   Run with:  dune exec examples/anycast_cdn.exe *)

module S = Beatbgp.Scenario
module Anycast = Netsim_cdn.Anycast
module Ldns = Netsim_cdn.Ldns
module Prefix = Netsim_traffic.Prefix
module World = Netsim_geo.World
module City = Netsim_geo.City

let name i = World.cities.(i).City.name

let () =
  let ms = S.microsoft ~sizes:S.test_sizes () in
  let system = ms.S.ms_system in
  Printf.printf "Anycast CDN with %d front-end sites\n"
    (List.length (Anycast.sites system));

  (* Catchment report for the first few clients. *)
  print_endline "\nCatchments (client -> anycast site):";
  Array.iteri
    (fun i (p : Prefix.t) ->
      if i < 10 then
        match Anycast.anycast_site system p with
        | Some site ->
            let d =
              City.distance_km World.cities.(p.Prefix.city) World.cities.(site)
            in
            Printf.printf "  %-14s -> %-12s (%5.0f km%s)\n" (name p.Prefix.city)
              (name site) d
              (if d > 2500. then ", MIS-CAUGHT" else "")
        | None -> Printf.printf "  %-14s -> unreachable\n" (name p.Prefix.city))
    ms.S.ms_prefixes;

  (* Run the full Figure-3 pipeline at this scale and show the
     headline: how often anycast is already (near-)optimal. *)
  let fig3 = Beatbgp.Fig3_anycast_gap.run ms in
  let f = fig3.Beatbgp.Fig3_anycast_gap.figure in
  Printf.printf "\nAnycast within 10 ms of the best unicast front-end: %.0f%%\n"
    (100. *. Beatbgp.Figure.stat f "frac_within_10ms_world");
  Printf.printf "Anycast >= 100 ms worse (the redirectable tail):     %.0f%%\n"
    (100. *. Beatbgp.Figure.stat f "frac_worse_100ms_world");

  (* DNS redirection verdict. *)
  let fig4 = Beatbgp.Fig4_dns_redirection.run ms in
  let g = fig4.Beatbgp.Fig4_dns_redirection.figure in
  Printf.printf "\nLDNS-based redirection (vs anycast, median):\n";
  Printf.printf "  improved:  %.0f%% of weighted clients\n"
    (100. *. Beatbgp.Figure.stat g "frac_improved_median");
  Printf.printf "  made worse: %.0f%% (the LDNS-granularity penalty)\n"
    (100. *. Beatbgp.Figure.stat g "frac_worse_median");
  let resolvers = ms.S.ms_assignment.Ldns.resolvers in
  let publics =
    Array.to_list resolvers |> List.filter (fun r -> r.Ldns.public)
  in
  Printf.printf "  (%d resolvers, %d of them public)\n" (Array.length resolvers)
    (List.length publics)
